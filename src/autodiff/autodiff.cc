#include "autodiff/autodiff.h"

#include <stdexcept>

namespace pe {

namespace {

/** Builder state for one differentiation run. */
class BackwardBuilder
{
  public:
    BackwardBuilder(Graph &g, int loss_id) : g_(g), loss_(loss_id) {}

    BackwardResult
    run()
    {
        if (numel(g_.node(loss_).shape) != 1)
            throw std::runtime_error("buildBackward: loss must be scalar");
        int n = g_.numNodes();
        computeNeedGrad(n);
        partials_.resize(n);

        if (!needGrad_[loss_])
            return result_; // nothing trainable reaches the loss

        int before = g_.numNodes();
        seedLoss();
        for (int id = loss_; id >= 0; --id) {
            if (!needGrad_[id])
                continue;
            int grad = gradOf(id);
            if (grad < 0)
                continue;
            // Copy: appending backward nodes reallocates the node
            // table, so references into it must not be held across
            // gradient emission.
            Node node = g_.node(id);
            if (node.op == OpKind::Param && node.trainable) {
                result_.paramGrads[id] = grad;
                continue;
            }
            emitInputGrads(node, grad);
        }
        result_.nodesEmitted = g_.numNodes() - before;
        return result_;
    }

  private:
    /** needGrad[n] = a trainable param is an ancestor of n. */
    void
    computeNeedGrad(int n)
    {
        needGrad_.assign(n, false);
        for (int id = 0; id < n; ++id) {
            const Node &node = g_.node(id);
            if (node.op == OpKind::Param && node.trainable) {
                needGrad_[id] = true;
                continue;
            }
            for (int in : node.inputs) {
                if (needGrad_[in]) {
                    needGrad_[id] = true;
                    break;
                }
            }
        }
    }

    void
    seedLoss()
    {
        int seed = g_.constantOf(Tensor::ones({1}), "grad_seed");
        partials_[loss_].push_back(seed);
    }

    /** Sum accumulated partials for a node (consumers all processed). */
    int
    gradOf(int id)
    {
        auto &parts = partials_[id];
        if (parts.empty())
            return -1;
        int acc = parts[0];
        for (size_t i = 1; i < parts.size(); ++i)
            acc = g_.add(OpKind::Add, {acc, parts[i]});
        return acc;
    }

    void
    addPartial(int id, int grad)
    {
        if (needGrad_[id])
            partials_[id].push_back(grad);
    }

    int
    add(OpKind op, std::vector<int> inputs, Attrs attrs = {})
    {
        return g_.add(op, std::move(inputs), std::move(attrs));
    }

    /** Reduce @p grad (shaped like the broadcast result) to @p shape. */
    int
    reduceToShape(int grad, const Shape &target)
    {
        const Shape &gs = g_.node(grad).shape;
        if (gs == target)
            return grad;
        std::vector<int64_t> axes;
        size_t off = gs.size() - target.size();
        for (size_t i = 0; i < gs.size(); ++i) {
            if (i < off || (target[i - off] == 1 && gs[i] != 1))
                axes.push_back(static_cast<int64_t>(i));
        }
        int r = grad;
        if (!axes.empty()) {
            Attrs a;
            a.set("axes", axes);
            a.set("keepdims", static_cast<int64_t>(0));
            r = add(OpKind::ReduceSum, {r}, std::move(a));
        }
        if (g_.node(r).shape != target) {
            Attrs a;
            a.set("shape", target);
            r = add(OpKind::Reshape, {r}, std::move(a));
        }
        return r;
    }

    int
    reshapeTo(int id, const Shape &shape)
    {
        Attrs a;
        a.set("shape", shape);
        return add(OpKind::Reshape, {id}, std::move(a));
    }

    void emitInputGrads(const Node &node, int g);

    // NOTE: emitInputGrads receives a copy owned by the caller.

    Graph &g_;
    int loss_;
    std::vector<bool> needGrad_;
    std::vector<std::vector<int>> partials_;
    BackwardResult result_;
};

void
BackwardBuilder::emitInputGrads(const Node &node, int g)
{
    const auto &in = node.inputs;
    // By value: adding nodes invalidates references into the graph.
    auto shape_of = [&](int i) -> Shape { return g_.node(in[i]).shape; };
    const int id = node.id;

    switch (node.op) {
      case OpKind::Input:
      case OpKind::Param:
      case OpKind::Const:
        return;

      case OpKind::Add:
        addPartial(in[0], reduceToShape(g, shape_of(0)));
        addPartial(in[1], reduceToShape(g, shape_of(1)));
        return;

      case OpKind::Sub:
        addPartial(in[0], reduceToShape(g, shape_of(0)));
        addPartial(in[1],
                   reduceToShape(add(OpKind::Neg, {g}), shape_of(1)));
        return;

      case OpKind::Mul:
        addPartial(in[0],
                   reduceToShape(add(OpKind::Mul, {g, in[1]}), shape_of(0)));
        addPartial(in[1],
                   reduceToShape(add(OpKind::Mul, {g, in[0]}), shape_of(1)));
        return;

      case OpKind::Div: {
        // y = a / b ; da = g / b ; db = -g * a / b^2
        addPartial(in[0],
                   reduceToShape(add(OpKind::Div, {g, in[1]}), shape_of(0)));
        int ga = add(OpKind::Mul, {g, in[0]});
        int b2 = add(OpKind::Mul, {in[1], in[1]});
        int db = add(OpKind::Neg, {add(OpKind::Div, {ga, b2})});
        addPartial(in[1], reduceToShape(db, shape_of(1)));
        return;
      }

      case OpKind::Neg:
        addPartial(in[0], add(OpKind::Neg, {g}));
        return;

      case OpKind::Relu:
        // ReluGrad masks where its first input is > 0; the forward
        // *output* works as the mask and keeps the pre-activation
        // value dead (which unlocks Conv+Bias+Relu fusion).
        addPartial(in[0], add(OpKind::ReluGrad, {id, g}));
        return;

      case OpKind::Gelu:
        addPartial(in[0], add(OpKind::GeluGrad, {in[0], g}));
        return;
      case OpKind::Silu:
        addPartial(in[0], add(OpKind::SiluGrad, {in[0], g}));
        return;
      case OpKind::Sigmoid:
        addPartial(in[0], add(OpKind::SigmoidGrad, {in[0], g}));
        return;
      case OpKind::Tanh:
        addPartial(in[0], add(OpKind::TanhGrad, {in[0], g}));
        return;

      case OpKind::Exp:
        addPartial(in[0], add(OpKind::Mul, {g, id}));
        return;
      case OpKind::Log:
        addPartial(in[0], add(OpKind::Div, {g, in[0]}));
        return;
      case OpKind::Sqrt: {
        Attrs a;
        a.set("alpha", 0.5);
        addPartial(in[0], add(OpKind::Scale,
                              {add(OpKind::Div, {g, id})}, std::move(a)));
        return;
      }
      case OpKind::Scale: {
        Attrs a;
        a.set("alpha", node.attrs.getFloat("alpha", 1.0));
        addPartial(in[0], add(OpKind::Scale, {g}, std::move(a)));
        return;
      }
      case OpKind::AddScalar:
      case OpKind::Identity:
        addPartial(in[0], g);
        return;

      case OpKind::MatMul:
      case OpKind::BatchMatMul: {
        OpKind mm = node.op;
        bool ta = node.attrs.getInt("transA", 0) != 0;
        bool tb = node.attrs.getInt("transB", 0) != 0;
        auto mk = [&](int x, int y, bool tx, bool ty) {
            Attrs a;
            a.set("transA", static_cast<int64_t>(tx));
            a.set("transB", static_cast<int64_t>(ty));
            return add(mm, {x, y}, std::move(a));
        };
        // dA = ta ? B (x) g : g (x) B ; dB = tb ? g (x) A : A (x) g
        addPartial(in[0], ta ? mk(in[1], g, tb, true)
                             : mk(g, in[1], false, !tb));
        addPartial(in[1], tb ? mk(g, in[0], true, ta)
                             : mk(in[0], g, !ta, false));
        return;
      }

      case OpKind::Reshape:
        addPartial(in[0], reshapeTo(g, shape_of(0)));
        return;

      case OpKind::Permute: {
        auto perm = node.attrs.getInts("perm");
        std::vector<int64_t> inv(perm.size());
        for (size_t i = 0; i < perm.size(); ++i)
            inv[perm[i]] = static_cast<int64_t>(i);
        Attrs a;
        a.set("perm", inv);
        addPartial(in[0], add(OpKind::Permute, {g}, std::move(a)));
        return;
      }

      case OpKind::Slice: {
        int64_t axis = node.attrs.getInt("axis");
        int64_t begin = node.attrs.getInt("begin");
        int64_t end = node.attrs.getInt("end");
        Attrs a;
        a.set("axis", axis);
        a.set("before", begin);
        a.set("after", shape_of(0)[axis] - end);
        addPartial(in[0], add(OpKind::Pad, {g}, std::move(a)));
        return;
      }

      case OpKind::Pad: {
        int64_t axis = node.attrs.getInt("axis");
        int64_t before = node.attrs.getInt("before", 0);
        Attrs a;
        a.set("axis", axis);
        a.set("begin", before);
        a.set("end", before + shape_of(0)[axis]);
        addPartial(in[0], add(OpKind::Slice, {g}, std::move(a)));
        return;
      }

      case OpKind::BroadcastTo:
        addPartial(in[0], reduceToShape(g, shape_of(0)));
        return;

      case OpKind::ReduceSum:
      case OpKind::ReduceMean: {
        auto axes = node.attrs.getInts("axes");
        bool keep = node.attrs.getInt("keepdims", 0) != 0;
        const Shape &xs = shape_of(0);
        int r = g;
        if (!keep) {
            Shape kshape = xs;
            for (int64_t ax : axes)
                kshape[ax] = 1;
            r = reshapeTo(r, kshape);
        }
        Attrs a;
        a.set("shape", xs);
        r = add(OpKind::BroadcastTo, {r}, std::move(a));
        if (node.op == OpKind::ReduceMean) {
            int64_t count = 1;
            for (int64_t ax : axes)
                count *= xs[ax];
            Attrs s;
            s.set("alpha", 1.0 / static_cast<double>(count));
            r = add(OpKind::Scale, {r}, std::move(s));
        }
        addPartial(in[0], r);
        return;
      }

      case OpKind::Conv2d:
      case OpKind::DwConv2d: {
        bool dw = node.op == OpKind::DwConv2d;
        int64_t stride = node.attrs.getInt("stride", 1);
        int64_t pad = node.attrs.getInt("pad", 0);
        if (needGrad_[in[0]]) {
            Attrs a;
            a.set("stride", stride);
            a.set("pad", pad);
            a.set("xshape", shape_of(0));
            addPartial(in[0],
                       add(dw ? OpKind::DwConv2dBwdInput
                              : OpKind::Conv2dBwdInput,
                           {in[1], g}, std::move(a)));
        }
        const Node &w = g_.node(in[1]);
        if (w.op == OpKind::Param && w.trainable) {
            Attrs a;
            a.set("stride", stride);
            a.set("pad", pad);
            a.set("wshape", shape_of(1));
            int64_t k = w.attrs.getInt("updateChannels", 0);
            if (k > 0)
                a.set("limitCo", k);
            addPartial(in[1],
                       add(dw ? OpKind::DwConv2dBwdWeight
                              : OpKind::Conv2dBwdWeight,
                           {in[0], g}, std::move(a)));
        } else if (needGrad_[in[1]]) {
            Attrs a;
            a.set("stride", stride);
            a.set("pad", pad);
            a.set("wshape", shape_of(1));
            addPartial(in[1],
                       add(dw ? OpKind::DwConv2dBwdWeight
                              : OpKind::Conv2dBwdWeight,
                           {in[0], g}, std::move(a)));
        }
        return;
      }

      case OpKind::AvgPool2d: {
        Attrs a;
        a.set("kernel", node.attrs.getInt("kernel"));
        a.set("stride", node.attrs.getInt("stride",
                                          node.attrs.getInt("kernel")));
        a.set("xshape", shape_of(0));
        addPartial(in[0], add(OpKind::AvgPool2dGrad, {g}, std::move(a)));
        return;
      }

      case OpKind::GlobalAvgPool: {
        Attrs a;
        a.set("xshape", shape_of(0));
        addPartial(in[0],
                   add(OpKind::GlobalAvgPoolGrad, {g}, std::move(a)));
        return;
      }

      case OpKind::Softmax:
        addPartial(in[0], add(OpKind::SoftmaxGrad, {id, g}));
        return;

      case OpKind::LayerNorm: {
        double eps = node.attrs.getFloat("eps", 1e-5);
        Attrs a;
        a.set("eps", eps);
        addPartial(in[0], add(OpKind::LayerNormGradX,
                              {in[0], in[1], g}, std::move(a)));
        if (needGrad_[in[1]]) {
            Attrs ag;
            ag.set("eps", eps);
            addPartial(in[1], add(OpKind::LayerNormGradGamma,
                                  {in[0], g}, std::move(ag)));
        }
        if (needGrad_[in[2]]) {
            const Shape &xs = shape_of(0);
            std::vector<int64_t> axes;
            for (size_t i = 0; i + 1 < xs.size(); ++i)
                axes.push_back(static_cast<int64_t>(i));
            Attrs ab;
            ab.set("axes", axes);
            ab.set("keepdims", static_cast<int64_t>(0));
            addPartial(in[2], add(OpKind::ReduceSum, {g}, std::move(ab)));
        }
        return;
      }

      case OpKind::RMSNorm: {
        double eps = node.attrs.getFloat("eps", 1e-5);
        Attrs a;
        a.set("eps", eps);
        addPartial(in[0], add(OpKind::RMSNormGradX,
                              {in[0], in[1], g}, std::move(a)));
        if (needGrad_[in[1]]) {
            Attrs ag;
            ag.set("eps", eps);
            addPartial(in[1], add(OpKind::RMSNormGradGamma,
                                  {in[0], g}, std::move(ag)));
        }
        return;
      }

      case OpKind::Embedding: {
        if (needGrad_[in[0]]) {
            Attrs a;
            a.set("vocab", shape_of(0)[0]);
            addPartial(in[0],
                       add(OpKind::EmbeddingGrad, {in[1], g}, std::move(a)));
        }
        return;
      }

      case OpKind::CrossEntropy: {
        int base = add(OpKind::CrossEntropyGrad, {in[0], in[1]});
        addPartial(in[0], add(OpKind::Mul, {base, g}));
        return;
      }

      case OpKind::Mse: {
        int base = add(OpKind::MseGrad, {in[0], in[1]});
        addPartial(in[0], add(OpKind::Mul, {base, g}));
        return;
      }

      default:
        throw std::runtime_error(
            std::string("buildBackward: no gradient rule for op ") +
            opName(node.op));
    }
}

} // namespace

BackwardResult
buildBackward(Graph &g, int loss_id)
{
    BackwardBuilder builder(g, loss_id);
    return builder.run();
}

} // namespace pe
