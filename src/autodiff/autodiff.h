/**
 * @file
 * Compile-time reverse-mode differentiation (paper Fig. 7).
 *
 * The backward graph is derived once, at compile time, from the same
 * primitive op set as the forward graph. Gradient propagation follows
 * need-grad reachability: a node receives a gradient only if a
 * trainable parameter lies in its ancestry. Under a sparse update
 * scheme this is exactly the paper's backward-graph pruning — the
 * chain stops at the earliest trainable layer and frozen layers' dW
 * subgraphs are never emitted, so DCE afterwards only has to sweep
 * unreferenced activations.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "ir/graph.h"

namespace pe {

/** Result of differentiating a graph. */
struct BackwardResult {
    /** trainable param node id -> gradient node id */
    std::unordered_map<int, int> paramGrads;
    /** number of backward nodes emitted */
    int nodesEmitted = 0;
};

/**
 * Append the backward graph for scalar @p loss_id to @p g.
 *
 * Gradients are produced for every Param node with trainable == true.
 * For Conv2d/DwConv2d weights carrying an "updateChannels" attribute
 * (set by the sparse-scheme pass), the weight-gradient op is emitted
 * with "limitCo" so only the first k output channels are computed —
 * the sub-layer sparse backpropagation of Section 2.6.
 *
 * @throws std::runtime_error if @p loss_id is not scalar-shaped.
 */
BackwardResult buildBackward(Graph &g, int loss_id);

} // namespace pe
