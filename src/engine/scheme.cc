#include "engine/scheme.h"

#include <cmath>
#include <sstream>

namespace pe {

bool
isBiasParam(const std::string &name)
{
    auto ends_with = [&](const std::string &suffix) {
        return name.size() >= suffix.size() &&
               name.compare(name.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
    };
    return ends_with(".bias") || ends_with(".beta");
}

SparseUpdateScheme
SparseUpdateScheme::full()
{
    return SparseUpdateScheme{};
}

SparseUpdateScheme
SparseUpdateScheme::biasOnly()
{
    SparseUpdateScheme s;
    s.defaultWeights_ = false;
    s.defaultBiases_ = true;
    return s;
}

SparseUpdateScheme
SparseUpdateScheme::frozen()
{
    SparseUpdateScheme s;
    s.defaultWeights_ = false;
    s.defaultBiases_ = false;
    return s;
}

SparseUpdateScheme &
SparseUpdateScheme::set(const std::string &name, TensorRule rule)
{
    exact_[name] = rule;
    return *this;
}

SparseUpdateScheme &
SparseUpdateScheme::updatePrefix(const std::string &prefix, double ratio)
{
    prefixWeights_[prefix] = TensorRule{true, ratio};
    return *this;
}

SparseUpdateScheme &
SparseUpdateScheme::updateBiasPrefix(const std::string &prefix)
{
    prefixBiases_[prefix] = true;
    return *this;
}

SparseUpdateScheme &
SparseUpdateScheme::updateContaining(const std::string &substr)
{
    contains_.push_back(substr);
    return *this;
}

TensorRule
SparseUpdateScheme::ruleFor(const std::string &name) const
{
    auto it = exact_.find(name);
    if (it != exact_.end())
        return it->second;
    for (const std::string &sub : contains_) {
        if (name.find(sub) != std::string::npos)
            return TensorRule{true, 1.0};
    }
    bool bias = isBiasParam(name);
    if (bias) {
        for (const auto &[prefix, on] : prefixBiases_) {
            if (name.rfind(prefix, 0) == 0)
                return TensorRule{on, 1.0};
        }
    } else {
        for (const auto &[prefix, rule] : prefixWeights_) {
            if (name.rfind(prefix, 0) == 0)
                return rule;
        }
    }
    return TensorRule{bias ? defaultBiases_ : defaultWeights_, 1.0};
}

int
SparseUpdateScheme::apply(Graph &g) const
{
    int trainable = 0;
    for (int id : g.paramIds()) {
        Node &n = g.node(id);
        TensorRule rule = ruleFor(n.name);
        n.trainable = rule.update;
        if (rule.update)
            ++trainable;
        if (rule.update && rule.ratio < 1.0 && n.shape.size() == 4) {
            auto k = static_cast<int64_t>(
                std::ceil(rule.ratio * static_cast<double>(n.shape[0])));
            k = std::max<int64_t>(1, std::min(k, n.shape[0]));
            n.attrs.set("updateChannels", k);
        }
    }
    return trainable;
}

std::string
SparseUpdateScheme::describe() const
{
    std::ostringstream os;
    os << "default(weights=" << (defaultWeights_ ? "update" : "freeze")
       << ", biases=" << (defaultBiases_ ? "update" : "freeze") << ")";
    for (const auto &[p, r] : prefixWeights_)
        os << " +weights:" << p << "@" << r.ratio;
    for (const auto &[p, on] : prefixBiases_)
        os << (on ? " +bias:" : " -bias:") << p;
    for (const auto &[name, r] : exact_) {
        os << " " << name << "=" << (r.update ? "update" : "freeze");
        if (r.ratio < 1.0)
            os << "@" << r.ratio;
    }
    return os.str();
}

} // namespace pe
