/**
 * @file
 * Sparse-backpropagation update schemes (paper Sections 2.6 / 3.1).
 *
 * A scheme names, per parameter, whether it is updated and (for
 * convolution weights) what fraction of output channels receive
 * gradients. Applying a scheme only toggles trainable flags and the
 * "updateChannels" attribute — the compile-time autodiff plus DCE do
 * the actual backward-graph pruning, which is exactly the paper's
 * mechanism for turning theoretical savings into measured ones.
 *
 * Naming convention (used by the frontend): weights are
 * "<layer>.weight", biases "<layer>.bias", norm scales "<layer>.gamma"
 * / "<layer>.beta".
 */

#pragma once

#include <map>
#include <string>

#include "ir/graph.h"

namespace pe {

/** Update rule for a single parameter tensor. */
struct TensorRule {
    bool update = true;
    double ratio = 1.0; ///< fraction of output channels (conv weights)
};

class SparseUpdateScheme
{
  public:
    /** Update everything (conventional full backpropagation). */
    static SparseUpdateScheme full();
    /** Update only bias parameters (paper Fig. 2b). */
    static SparseUpdateScheme biasOnly();
    /** Freeze everything; overrides select what trains. */
    static SparseUpdateScheme frozen();

    /** Per-name override (exact parameter name). */
    SparseUpdateScheme &set(const std::string &name, TensorRule rule);
    /** Enable weight+bias update for every param with this prefix. */
    SparseUpdateScheme &updatePrefix(const std::string &prefix,
                                     double ratio = 1.0);
    /** Enable bias update for every param with this prefix. */
    SparseUpdateScheme &updateBiasPrefix(const std::string &prefix);
    /** Enable update for every param whose name contains @p substr. */
    SparseUpdateScheme &updateContaining(const std::string &substr);

    /** Resolve the rule for one parameter name. */
    TensorRule ruleFor(const std::string &name) const;

    /**
     * Set trainable flags / updateChannels attributes on @p g.
     * @return number of trainable parameter tensors.
     */
    int apply(Graph &g) const;

    /** Human-readable summary for reports. */
    std::string describe() const;

  private:
    bool defaultWeights_ = true;
    bool defaultBiases_ = true;
    std::map<std::string, TensorRule> exact_;
    std::map<std::string, TensorRule> prefixWeights_;
    std::map<std::string, bool> prefixBiases_;
    std::vector<std::string> contains_;
};

/** True for names ending in ".bias" or ".beta". */
bool isBiasParam(const std::string &name);

} // namespace pe
