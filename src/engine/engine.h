/**
 * @file
 * The PockEngine facade: compile a forward graph + loss + sparse
 * update scheme into an executable training program (paper Fig. 4).
 *
 * Pipeline: apply scheme -> compile-time autodiff -> emit in-place
 * optimizer -> simplify -> constant fold -> operator fusion -> DCE
 * (prunes the frozen layers' backward subgraphs) -> memory-aware
 * reordering -> backend/kernel switching -> memory planning -> bind.
 */

#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autodiff/autodiff.h"
#include "engine/scheme.h"
#include "optim/optim.h"
#include "passes/passes.h"
#include "runtime/executor.h"

namespace pe {

/** Compilation switches (all graph optimizations are ablatable). */
struct CompileOptions {
    bool fuse = true;          ///< operator fusion
    bool fuseAttention = true; ///< collapse attention subgraphs into
                               ///< FusedAttention (also needs `fuse`);
                               ///< off builds the unfused reference
                               ///< the parity tests/benches compare to
    bool reorder = true;       ///< memory-aware scheduling + in-place
    bool winograd = true;      ///< bind frozen 3x3 convs to Winograd
    bool blocked = true;       ///< blocked GEMM variant
    bool foldConstants = true;
    OptimConfig optim = OptimConfig::sgd(0.01);
    /**
     * Gradient accumulation (paper Section 5 fine-tunes LLaMA with
     * 16-step accumulation). When > 1, the compiled step accumulates
     * scaled gradients into persistent buffers and a second, tiny
     * compiled program applies the optimizer every N-th trainStep().
     */
    int gradAccumSteps = 1;
    /**
     * Threads the bound executor may split partitionable kernels
     * across (1 = serial and bit-identical to the single-threaded
     * runtime; <= 0 = all hardware threads). The per-node launch plan
     * is fixed at bind time, so this is a compile-time choice like
     * everything else.
     */
    int numThreads = 1;
    /**
     * Bind scalar-tier kernels even when the host has AVX2/NEON —
     * the determinism escape hatch. int8 SIMD kernels are bit-exact
     * to scalar and always eligible otherwise; fp32 SIMD kernels use
     * FMA, whose different rounding is covered by a 1e-5 relative
     * tolerance contract (see kernel.h).
     */
    bool forceScalarTier = false;
    /**
     * Storage precision of the compiled forward graph. Int8 rewrites
     * calibrated forward ops (see pe::calibrate) to int8 storage with
     * int32 accumulation, keeping the sparse-BP backward graph in
     * fp32; F16 stores forward activations as halves with fp32
     * compute. The optimizer and parameter masters stay fp32 in every
     * mode, so fine-tuning on a quantized forward keeps working.
     */
    Precision precision = Precision::F32;
};

/** What the compiler did — consumed by benches and EXPERIMENTS.md. */
struct CompileReport {
    int forwardNodes = 0;     ///< nodes before autodiff
    int backwardNodes = 0;    ///< nodes emitted by autodiff
    int trainableTensors = 0;
    int prunedNodes = 0;      ///< removed by DCE (frozen subgraphs)
    int fusions = 0;
    int folded = 0;
    PassStats backend;
    int kernelSteps = 0;      ///< runtime kernel invocations per step
    double flopsPerStep = 0;
    /** Planned arena extent: activations/gradients AND kernel
     *  workspaces (Arena v2 — scratch no longer hides off-plan). */
    int64_t arenaBytes = 0;
    int64_t arenaBytesNoReorder = 0; ///< ablation: natural order
    /** Peak kernel-workspace bytes inside the arena (per-shard
     *  instances of the heaviest step + persistent shared regions).
     *  Reported separately so footprint columns remain comparable
     *  with pre-workspace-aware numbers. */
    int64_t workspaceBytes = 0;
    int64_t paramBytes = 0;
    int64_t totalBytes = 0;          ///< Table 4 metric
    /** Live arena bytes at each execution position — the per-step
     *  memory timeline behind Table 4's peak. */
    std::vector<int64_t> memoryTimeline;
    int64_t peakLiveBytes = 0;       ///< max over memoryTimeline
    /** Steps whose bound launch plan has more than one shard. */
    int shardedSteps = 0;
    /** Splittable steps serialized solely by their scratch — the
     *  pre-Arena-v2 executor rule. Must be 0; tests assert on it. */
    int serializedByWorkspace = 0;
    /**
     * Kernel lookups that silently degraded to the default variant
     * because the requested one is not registered — nonzero means the
     * backend-switching pass selected something the kernel library
     * cannot honor (a real bug on a real backend, and previously
     * invisible).
     */
    int kernelFallbacks = 0;
    std::vector<std::string> fallbackKernels; ///< "op/variant" labels
    /** SIMD tier the executor bound against ("scalar"/"avx2"/"neon"),
     *  after forceScalarTier and any artifact-load downgrade. */
    std::string simdTier = "scalar";
    /** Steps bound to a SIMD-tier kernel variant. */
    int simdSteps = 0;
    /** Chosen tier per kernel step, in execution order. */
    std::vector<std::string> stepTiers;
    /** Storage precision this program was compiled at. */
    Precision precision = Precision::F32;
    /** What the QuantizePass did (zeros when precision == F32). */
    QuantizeStats quant;
    int64_t constBytes = 0; ///< compile-time constants (pre-quantized
                            ///< i8 weights land here when deployed)
    /** Planned arena value bytes by storage dtype (index = DType) —
     *  the per-precision activation footprint of Table 4's quantized
     *  rows. Workspaces are excluded (see workspaceBytes). */
    std::array<int64_t, 3> arenaBytesByDtype{};
    /** Const bytes by storage dtype (i8 = deployed quantized weights). */
    std::array<int64_t, 3> constBytesByDtype{};

    /**
     * The Table-4 "activation + weight" footprint: every planned
     * arena value (all dtypes, workspaces excluded) plus weights
     * (params + consts). The single definition the precision bench,
     * examples and acceptance tests all quote.
     */
    int64_t
    actWeightBytes() const
    {
        int64_t act = 0;
        for (int64_t b : arenaBytesByDtype)
            act += b;
        return act + paramBytes + constBytes;
    }

    /**
     * Per-op aggregation of the fallback labels — "op/variant x count"
     * in first-appearance order — so a model that hits the same
     * missing kernel on every layer (e.g. QuantDwConv2d's absent int8
     * tier) reads as one line, not N duplicates. Empty when every
     * selected variant is registered.
     */
    std::string
    fallbackBreakdown() const
    {
        if (kernelFallbacks == 0)
            return "";
        std::vector<std::pair<std::string, int>> counts;
        for (const std::string &label : fallbackKernels) {
            bool found = false;
            for (auto &[l, c] : counts) {
                if (l == label) {
                    ++c;
                    found = true;
                    break;
                }
            }
            if (!found)
                counts.emplace_back(label, 1);
        }
        std::string out;
        for (size_t i = 0; i < counts.size(); ++i) {
            if (i)
                out += ", ";
            out += counts[i].first + " x" +
                   std::to_string(counts[i].second);
        }
        return out;
    }

    /**
     * Per-tier aggregation of stepTiers — "tier x count" in
     * first-appearance order (e.g. "avx2 x12, scalar x3") — the
     * one-line answer to "did the SIMD tier actually bind?".
     */
    std::string
    tierBreakdown() const
    {
        std::vector<std::pair<std::string, int>> counts;
        for (const std::string &t : stepTiers) {
            bool found = false;
            for (auto &[l, c] : counts) {
                if (l == t) {
                    ++c;
                    found = true;
                    break;
                }
            }
            if (!found)
                counts.emplace_back(t, 1);
        }
        std::string out;
        for (size_t i = 0; i < counts.size(); ++i) {
            if (i)
                out += ", ";
            out += counts[i].first + " x" +
                   std::to_string(counts[i].second);
        }
        return out;
    }
};

/** A compiled training step. */
class TrainingProgram
{
  public:
    TrainingProgram(Graph g, int loss_id, std::vector<int> order,
                    std::shared_ptr<ParamStore> store,
                    ExecOptions exec_options, CompileReport report,
                    Graph apply_graph = {}, int grad_accum_steps = 1,
                    std::vector<std::string> accum_buffers = {});

    // The executor holds a reference into graph_, so relocating a
    // program would dangle it. compile*() returns work via C++17
    // guaranteed elision; heap placement goes through CompiledGraph +
    // Executor directly (see the serving runtime's Bucket).
    TrainingProgram(TrainingProgram &&) = delete;
    TrainingProgram &operator=(TrainingProgram &&) = delete;

    /**
     * Bind inputs, run one compiled step, return the loss. Under
     * gradient accumulation the optimizer fires on every N-th call.
     */
    float trainStep(
        const std::unordered_map<std::string, Tensor> &feeds);

    const CompileReport &report() const { return report_; }
    ParamStore &params() { return *store_; }
    std::shared_ptr<ParamStore> paramsPtr() { return store_; }
    const Graph &graph() const { return graph_; }
    Executor &executor() { return *executor_; }

  private:
    Graph graph_;
    int lossId_;
    std::shared_ptr<ParamStore> store_;
    std::unique_ptr<Executor> executor_;
    Graph applyGraph_;                        ///< accumulation only
    std::unique_ptr<Executor> applyExecutor_; ///< accumulation only
    int gradAccumSteps_ = 1;
    int64_t microStep_ = 0;
    std::vector<std::string> accumBuffers_;
    CompileReport report_;
};

/** A compiled forward-only program (evaluation / deployment). */
class InferenceProgram
{
  public:
    /** @param order  execution order; empty = memory-aware reorder of
     *                @p g (the historical behavior). */
    InferenceProgram(Graph g, std::shared_ptr<ParamStore> store,
                     ExecOptions exec_options,
                     CompileReport report = {},
                     std::vector<int> order = {});

    /**
     * Bind a deserialized compiled product (src/plan/): the executor
     * is constructed from @p art verbatim, with zero planner/
     * scheduler/QuantizePass work. This is the loadPlan() path.
     */
    InferenceProgram(Graph g, std::shared_ptr<ParamStore> store,
                     ProgramArtifact art, CompileReport report);

    // Non-relocatable for the same reason as TrainingProgram: the
    // bound executor references graph_ by address.
    InferenceProgram(InferenceProgram &&) = delete;
    InferenceProgram &operator=(InferenceProgram &&) = delete;

    /** Bind inputs, run, return the graph outputs in order. */
    std::vector<Tensor> run(
        const std::unordered_map<std::string, Tensor> &feeds);

    /**
     * Run a batch of independent feed sets through the program,
     * returning one output vector per feed set. Input names are
     * resolved to node ids once for the whole batch, so the per-item
     * cost is a memcpy plus the compiled step — the serving-style
     * fast path (run() re-resolves names on every call).
     */
    std::vector<std::vector<Tensor>> runBatch(
        const std::vector<std::unordered_map<std::string, Tensor>>
            &feeds);

    const Graph &graph() const { return graph_; }
    Executor &executor() { return *executor_; }
    const Executor &executor() const { return *executor_; }
    /** Memory/backend summary of the bound program (Table 4 rows for
     *  deployment-shaped compiles come from here). */
    const CompileReport &report() const { return report_; }

    /**
     * Serialize this compiled program — graph, order, variants,
     * memory plan, launch geometry, packed const pool, frozen params
     * — into the versioned binary plan format (src/plan/) at @p path.
     * loadPlan(path) reconstructs a bit-identical program without
     * invoking any compile pipeline stage. @p tag is a free-form
     * provenance string (plan_tool records the model recipe there so
     * `plan_tool run --verify` can rebuild and bit-compare). Defined
     * in src/plan/plan.cc.
     */
    void savePlan(const std::string &path,
                  const std::string &tag = "") const;

  private:
    Graph graph_;
    std::shared_ptr<ParamStore> store_;
    std::unique_ptr<Executor> executor_;
    CompileReport report_;
};

/**
 * Compile a training program.
 *
 * @param forward  forward graph; must contain a scalar loss node
 * @param loss_id  id of the loss node inside @p forward
 * @param scheme   sparse update scheme (which tensors train)
 * @param options  optimizer + graph-optimization switches
 * @param store    parameter storage (shared with inference programs);
 *                 created if null
 */
TrainingProgram compileTraining(const Graph &forward, int loss_id,
                                const SparseUpdateScheme &scheme,
                                const CompileOptions &options,
                                std::shared_ptr<ParamStore> store);

/**
 * Compile an inference program over @p output_ids of @p forward.
 * All parameters are treated as frozen (enables Winograd everywhere
 * eligible).
 */
InferenceProgram compileInference(const Graph &forward,
                                  const std::vector<int> &output_ids,
                                  const CompileOptions &options,
                                  std::shared_ptr<ParamStore> store);

/** Intermediate compile product shared by execution and analysis. */
struct CompiledGraph {
    Graph graph;
    int lossId = -1;
    std::vector<int> order;
    std::vector<std::string> variants;
    CompileReport report;
};

/**
 * Run the full compile pipeline without materializing parameters or
 * binding an executor. This is how full-size (7B-parameter) models
 * are analyzed for memory (Table 4) and projected latency (Fig. 9 /
 * Table 5) on hardware this host could never execute.
 *
 * @param store  optional weight values: quantized compiles use them
 *               for per-channel weight scales (placeholder scales are
 *               planned when absent, which is fine for memory-only
 *               analysis).
 */
CompiledGraph compileGraphOnly(const Graph &forward, int loss_id,
                               const SparseUpdateScheme &scheme,
                               const CompileOptions &options,
                               const ParamStore *store = nullptr);

/**
 * The inference compile pipeline (freeze + simplify/fold/fuse/DCE +
 * deployment quantization + backend switch + memory-aware order)
 * WITHOUT binding an executor. The returned CompiledGraph is plain
 * movable data, which is what lets the serving runtime place one
 * compiled plan per shape bucket at a stable address and then bind
 * many concurrent session contexts against it. compileInference() is
 * a thin wrapper that binds this product into an InferenceProgram.
 */
CompiledGraph compileInferenceGraph(const Graph &forward,
                                    const std::vector<int> &output_ids,
                                    const CompileOptions &options,
                                    std::shared_ptr<ParamStore> store);

/**
 * Copy the bound-executor facts (kernel steps, arena/workspace/param
 * bytes, memory timeline, shard stats, fallbacks) into @p report —
 * shared by TrainingProgram / InferenceProgram construction and the
 * serving runtime's per-bucket reports.
 */
void finalizeExecReport(CompileReport &report, const Executor &ex);

} // namespace pe
