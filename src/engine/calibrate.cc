/**
 * @file
 * Post-training calibration: run the fp32 forward graph over a few
 * representative batches via the existing executor and record each
 * value's observed range, then stamp the ranges onto the graph as
 * "calib_min"/"calib_max" attrs for the QuantizePass to consume.
 *
 * The graph is executed as built — natural order, default kernels, no
 * passes — so node ids line up one-to-one with the graph being
 * stamped, and every intermediate stays fetchable (all nodes are
 * marked outputs for the calibration run, which keeps the arena from
 * recycling a value before the observer reads it).
 *
 * This TU lives in src/engine/ (not src/quant/) because it DRIVES the
 * runtime executor: the quant layer's header stays below passes in
 * the layer map (passes.h includes quant/quant.h for Precision), so
 * the executor-running implementation belongs at engine level, where
 * upward includes are legal.
 */

#include "quant/quant.h"

#include <stdexcept>

#include "passes/passes.h"
#include "runtime/executor.h"

namespace pe {

std::vector<CalibRange>
observeRanges(const Graph &g, ParamStore &store,
              const std::vector<std::unordered_map<std::string, Tensor>>
                  &batches,
              const CalibrationOptions &opts)
{
    if (batches.empty())
        throw std::runtime_error("calibrate: no calibration batches");

    Graph copy = g;
    copy.outputs().clear();
    for (int id = 0; id < copy.numNodes(); ++id)
        copy.markOutput(id); // keep every value live for observation
    Executor ex(copy, naturalOrder(copy), store);

    std::vector<CalibRange> ranges(g.numNodes());
    std::vector<bool> seen(g.numNodes(), false);
    float momentum = static_cast<float>(opts.momentum);

    for (const auto &feeds : batches) {
        for (const auto &[name, t] : feeds)
            ex.bindInput(name, t);
        ex.run();
        for (int id = 0; id < g.numNodes(); ++id) {
            Tensor v = ex.fetch(id);
            if (v.size() == 0)
                continue;
            float mn = v[0], mx = v[0];
            for (int64_t i = 1; i < v.size(); ++i) {
                mn = std::min(mn, v[i]);
                mx = std::max(mx, v[i]);
            }
            CalibRange &r = ranges[id];
            if (!seen[id]) {
                r.mn = mn;
                r.mx = mx;
                seen[id] = true;
            } else if (opts.observer == ObserverKind::MinMax) {
                r.mn = std::min(r.mn, mn);
                r.mx = std::max(r.mx, mx);
            } else {
                r.mn = momentum * r.mn + (1.0f - momentum) * mn;
                r.mx = momentum * r.mx + (1.0f - momentum) * mx;
            }
        }
    }
    return ranges;
}

int
calibrate(Graph &g, ParamStore &store,
          const std::vector<std::unordered_map<std::string, Tensor>>
              &batches,
          const CalibrationOptions &opts)
{
    std::vector<CalibRange> ranges = observeRanges(g, store, batches, opts);
    int stamped = 0;
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &n = g.node(id);
        n.attrs.set(kCalibMinAttr, static_cast<double>(ranges[id].mn));
        n.attrs.set(kCalibMaxAttr, static_cast<double>(ranges[id].mx));
        ++stamped;
    }
    return stamped;
}

} // namespace pe
