#include "engine/engine.h"

#include <algorithm>
#include <stdexcept>

namespace pe {

void
finalizeExecReport(CompileReport &report, const Executor &ex)
{
    report.kernelSteps = ex.numSteps();
    const MemoryPlan &mp = ex.memoryPlan();
    report.arenaBytes = mp.arenaBytes;
    report.workspaceBytes = mp.workspaceBytes;
    report.paramBytes = mp.paramBytes;
    report.constBytes = mp.constBytes;
    report.totalBytes = mp.totalBytes();
    report.memoryTimeline = mp.liveBytesAtStep;
    report.peakLiveBytes = mp.peakLiveBytes;
    report.arenaBytesByDtype = mp.arenaValueBytesByDtype;
    report.constBytesByDtype = mp.constBytesByDtype;
    report.shardedSteps = ex.shardedSteps();
    report.serializedByWorkspace = ex.serializedByWorkspace();
    report.simdTier = simdTierName(ex.simdTier());
    report.simdSteps = ex.simdSteps();
    report.stepTiers = ex.stepTiers();
}

TrainingProgram::TrainingProgram(Graph g, int loss_id,
                                 std::vector<int> order,
                                 std::shared_ptr<ParamStore> store,
                                 ExecOptions exec_options,
                                 CompileReport report, Graph apply_graph,
                                 int grad_accum_steps,
                                 std::vector<std::string> accum_buffers)
    : graph_(std::move(g)), lossId_(loss_id), store_(std::move(store)),
      applyGraph_(std::move(apply_graph)),
      gradAccumSteps_(grad_accum_steps),
      accumBuffers_(std::move(accum_buffers)),
      report_(std::move(report))
{
    executor_ = std::make_unique<Executor>(graph_, std::move(order),
                                           *store_,
                                           std::move(exec_options));
    if (applyGraph_.numNodes() > 0) {
        applyExecutor_ = std::make_unique<Executor>(
            applyGraph_, naturalOrder(applyGraph_), *store_);
    }
    finalizeExecReport(report_, *executor_);
}

float
TrainingProgram::trainStep(
    const std::unordered_map<std::string, Tensor> &feeds)
{
    for (const auto &[name, t] : feeds)
        executor_->bindInput(name, t);
    executor_->run();
    float loss = executor_->fetch(lossId_)[0];
    if (applyExecutor_ && ++microStep_ % gradAccumSteps_ == 0) {
        applyExecutor_->run();
        for (const std::string &name : accumBuffers_)
            store_->get(name).fill(0.0f);
    }
    return loss;
}

InferenceProgram::InferenceProgram(Graph g,
                                   std::shared_ptr<ParamStore> store,
                                   ExecOptions exec_options,
                                   CompileReport report,
                                   std::vector<int> order)
    : graph_(std::move(g)), store_(std::move(store)),
      report_(std::move(report))
{
    if (order.empty())
        order = reorderForMemory(graph_);
    executor_ = std::make_unique<Executor>(graph_, std::move(order),
                                           *store_,
                                           std::move(exec_options));
    finalizeExecReport(report_, *executor_);
    report_.kernelFallbacks = executor_->fallbackCount();
    report_.fallbackKernels = executor_->fallbackKernels();
}

InferenceProgram::InferenceProgram(Graph g,
                                   std::shared_ptr<ParamStore> store,
                                   ProgramArtifact art,
                                   CompileReport report)
    : graph_(std::move(g)), store_(std::move(store)),
      report_(std::move(report))
{
    executor_ =
        std::make_unique<Executor>(graph_, std::move(art), *store_);
    finalizeExecReport(report_, *executor_);
    report_.kernelFallbacks = executor_->fallbackCount();
    report_.fallbackKernels = executor_->fallbackKernels();
}

std::vector<Tensor>
InferenceProgram::run(
    const std::unordered_map<std::string, Tensor> &feeds)
{
    for (const auto &[name, t] : feeds)
        executor_->bindInput(name, t);
    executor_->run();
    std::vector<Tensor> outs;
    outs.reserve(graph_.outputs().size());
    for (int id : graph_.outputs())
        outs.push_back(executor_->fetch(id));
    return outs;
}

std::vector<std::vector<Tensor>>
InferenceProgram::runBatch(
    const std::vector<std::unordered_map<std::string, Tensor>> &feeds)
{
    std::vector<std::vector<Tensor>> results;
    results.reserve(feeds.size());
    // Resolve feed names to input node ids once, from the first item
    // (every item must feed the same inputs — they are one batch).
    std::vector<std::pair<std::string, int>> slots;
    if (!feeds.empty()) {
        for (const auto &[name, t] : feeds.front()) {
            int id = executor_->inputId(name);
            if (id < 0)
                throw std::runtime_error("runBatch: no input named " +
                                         name);
            slots.emplace_back(name, id);
        }
    }
    for (const auto &feed : feeds) {
        if (feed.size() != slots.size())
            throw std::runtime_error(
                "runBatch: feed sets must bind the same inputs");
        for (const auto &[name, id] : slots) {
            auto it = feed.find(name);
            if (it == feed.end())
                throw std::runtime_error(
                    "runBatch: feed sets must bind the same inputs "
                    "(missing " +
                    name + ")");
            executor_->bindInputById(id, it->second);
        }
        executor_->run();
        std::vector<Tensor> outs;
        outs.reserve(graph_.outputs().size());
        for (int id : graph_.outputs())
            outs.push_back(executor_->fetch(id));
        results.push_back(std::move(outs));
    }
    return results;
}

CompiledGraph
compileGraphOnly(const Graph &forward, int loss_id,
                 const SparseUpdateScheme &scheme,
                 const CompileOptions &options, const ParamStore *store)
{
    CompiledGraph out;
    Graph g = forward;
    CompileReport report;
    report.forwardNodes = g.numNodes();
    report.precision = options.precision;

    // Name the loss so its id can be tracked across graph compaction.
    g.node(loss_id).name = "__loss__";
    g.outputs().clear();
    g.markOutput(loss_id);

    // 1. Sparse update scheme: trainable flags + channel ratios.
    report.trainableTensors = scheme.apply(g);

    // 2. Compile-time autodiff (prunes frozen branches by never
    //    emitting them).
    BackwardResult bwd = buildBackward(g, loss_id);
    report.backwardNodes = bwd.nodesEmitted;

    // 3. In-place optimizer emission — or, under gradient
    //    accumulation, scaled AccumGrad into persistent buffers (the
    //    optimizer then lives in a separate tiny apply program).
    if (options.gradAccumSteps > 1) {
        std::vector<std::pair<int, int>> pairs(bwd.paramGrads.begin(),
                                               bwd.paramGrads.end());
        std::sort(pairs.begin(), pairs.end());
        double inv = 1.0 / static_cast<double>(options.gradAccumSteps);
        for (auto [pid, gid] : pairs) {
            const std::string base = g.node(pid).name;
            const Shape gshape = g.node(gid).shape;
            int gacc = g.param(gshape, base + ".gacc", false);
            Attrs sa;
            sa.set("alpha", inv);
            int scaled = g.add(OpKind::Scale, {gid}, std::move(sa));
            int acc = g.add(OpKind::AccumGrad, {gacc, scaled}, {},
                            base + ".gaccum");
            g.markOutput(acc);
        }
    } else {
        emitOptimizer(g, options.optim, bwd.paramGrads);
    }

    // 4. Graph optimizations on the unified IR.
    simplify(g);
    if (options.foldConstants)
        report.folded = constantFold(g);
    if (options.fuse) {
        report.fusions = fuseOperators(g);
        if (options.fuseAttention)
            report.fusions += fuseAttention(g);
    }
    report.prunedNodes = dce(g);

    // Re-locate the loss node after compaction.
    auto findLoss = [&g]() {
        for (int i = 0; i < g.numNodes(); ++i) {
            if (g.node(i).name == "__loss__")
                return i;
        }
        throw std::runtime_error("compileGraphOnly: loss eliminated");
    };
    int loss = findLoss();

    // 4b. Quantization: rewrite the forward region (the loss node's
    //     ancestor cone) to int8 or f16 storage. Running after
    //     autodiff+fusion is what keeps the backward graph fp32: the
    //     backward ops simply pick up per-use Dequantize reads of the
    //     now-int8 stored activations (straight-through estimates).
    //     Trainable weights keep fp32 masters and are re-quantized
    //     each step, so the in-place optimizer still works.
    if (options.precision != Precision::F32) {
        QuantizeOptions qo;
        qo.precision = options.precision;
        qo.root = loss;
        qo.store = store;
        qo.prequantizeFrozen = false; // training graphs keep masters
        quantizePass(g, qo, &report.quant);
        dce(g); // sweep values only the fp32 forward consumed
        loss = findLoss();
    }

    // 5. Backend switching. Variants are order-independent (they read
    //    shapes and trainability only), and selecting them before
    //    scheduling lets the planner include each kernel's declared
    //    workspace in every number below — the schedule choice, the
    //    reorder ablation, and the reported footprint all see the
    //    same honest arena.
    BackendOptions bopt;
    bopt.enableWinograd = options.winograd;
    bopt.enableBlocked = options.blocked;
    out.variants = switchBackends(g, bopt, &report.backend);

    // Surface kernel-library gaps: a selected variant that is not
    // registered will silently run the default at bind time. This is
    // the single source of the report's fallback fields (analysis-only
    // compiles see them too); counting only where a default exists
    // mirrors bind behavior — a missing default throws there instead.
    for (int id = 0; id < g.numNodes(); ++id) {
        const std::string &v = out.variants[id];
        if (!isSourceOp(g.node(id).op) && !v.empty() &&
            !hasKernelVariant(g.node(id).op, v) &&
            hasKernelVariant(g.node(id).op, "")) {
            ++report.kernelFallbacks;
            report.fallbackKernels.push_back(
                std::string(opName(g.node(id).op)) + "/" + v);
        }
    }

    // 6. Scheduling (+ ablation number for the report). The greedy
    //    memory-aware schedule is not guaranteed to beat creation
    //    order on every graph, so plan both and keep the cheaper —
    //    both are computed at compile time anyway. Workspace requests
    //    are node-keyed, so one launch summary serves both orders.
    int threads = options.numThreads <= 0 ? HostDevice::hardwareThreads()
                                          : options.numThreads;
    std::vector<int> order = naturalOrder(g);
    LaunchSummary launches = planLaunches(g, order, out.variants, threads);
    MemoryPlan plan = planMemory(g, order, launches.workspaces);
    report.arenaBytesNoReorder = plan.arenaBytes;
    if (options.reorder) {
        std::vector<int> reordered = reorderForMemory(g);
        MemoryPlan replan = planMemory(g, reordered, launches.workspaces);
        if (replan.arenaBytes < plan.arenaBytes) {
            order = std::move(reordered);
            plan = std::move(replan);
        }
    }

    report.flopsPerStep = g.totalFlops();
    report.arenaBytes = plan.arenaBytes;
    report.workspaceBytes = plan.workspaceBytes;
    report.paramBytes = plan.paramBytes;
    report.constBytes = plan.constBytes;
    report.arenaBytesByDtype = plan.arenaValueBytesByDtype;
    report.constBytesByDtype = plan.constBytesByDtype;
    report.totalBytes = plan.totalBytes();
    report.memoryTimeline = std::move(plan.liveBytesAtStep);
    report.peakLiveBytes = plan.peakLiveBytes;
    report.shardedSteps = launches.shardedSteps;
    report.serializedByWorkspace = launches.serializedByWorkspace;
    report.kernelSteps = 0;
    for (int id : order) {
        if (!isSourceOp(g.node(id).op))
            ++report.kernelSteps;
    }

    out.graph = std::move(g);
    out.lossId = loss;
    out.order = std::move(order);
    out.report = std::move(report);
    return out;
}

TrainingProgram
compileTraining(const Graph &forward, int loss_id,
                const SparseUpdateScheme &scheme,
                const CompileOptions &options,
                std::shared_ptr<ParamStore> store)
{
    if (!store)
        store = std::make_shared<ParamStore>();
    CompiledGraph c =
        compileGraphOnly(forward, loss_id, scheme, options, store.get());
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = options.numThreads;
    eopt.forceScalarTier = options.forceScalarTier;

    // Under gradient accumulation, build the small apply program that
    // consumes the ".gacc" buffers every N-th step.
    Graph apply_graph;
    std::vector<std::string> accum_buffers;
    if (options.gradAccumSteps > 1) {
        std::unordered_map<int, int> param_grads;
        for (int id : c.graph.paramIds()) {
            const Node &n = c.graph.node(id);
            const std::string suffix = ".gacc";
            if (n.name.size() <= suffix.size() ||
                n.name.compare(n.name.size() - suffix.size(),
                               suffix.size(), suffix) != 0) {
                continue;
            }
            std::string base =
                n.name.substr(0, n.name.size() - suffix.size());
            int base_id = c.graph.findParam(base);
            int p = apply_graph.param(c.graph.node(base_id).shape, base);
            int gacc = apply_graph.param(n.shape, n.name, false);
            param_grads[p] = gacc;
            accum_buffers.push_back(n.name);
        }
        emitOptimizer(apply_graph, options.optim, param_grads);
    }
    return TrainingProgram(std::move(c.graph), c.lossId,
                           std::move(c.order), std::move(store),
                           std::move(eopt), std::move(c.report),
                           std::move(apply_graph),
                           options.gradAccumSteps,
                           std::move(accum_buffers));
}

CompiledGraph
compileInferenceGraph(const Graph &forward,
                      const std::vector<int> &output_ids,
                      const CompileOptions &options,
                      std::shared_ptr<ParamStore> store)
{
    CompiledGraph out;
    Graph g = forward;
    g.outputs() = output_ids;
    for (int id : g.paramIds())
        g.node(id).trainable = false;

    out.report.forwardNodes = g.numNodes();
    simplify(g);
    if (options.foldConstants)
        out.report.folded = constantFold(g);
    if (options.fuse) {
        out.report.fusions = fuseOperators(g);
        if (options.fuseAttention)
            out.report.fusions += fuseAttention(g);
    }
    out.report.prunedNodes = dce(g);

    out.report.precision = options.precision;

    // Deployment-shaped quantization: every param is frozen here, so
    // weights are pre-quantized into i8 Consts and DCE drops the fp32
    // masters from the graph — and from the reported footprint.
    if (options.precision != Precision::F32) {
        QuantizeOptions qo;
        qo.precision = options.precision;
        qo.root = -1; // whole graph feeds the outputs
        qo.store = store.get();
        qo.prequantizeFrozen = true;
        quantizePass(g, qo, &out.report.quant);
        dce(g);
    }

    BackendOptions bopt;
    bopt.enableWinograd = options.winograd;
    bopt.enableBlocked = options.blocked;
    out.variants = switchBackends(g, bopt, &out.report.backend);
    out.order = reorderForMemory(g);
    out.report.flopsPerStep = g.totalFlops();
    out.graph = std::move(g);
    return out;
}

InferenceProgram
compileInference(const Graph &forward,
                 const std::vector<int> &output_ids,
                 const CompileOptions &options,
                 std::shared_ptr<ParamStore> store)
{
    if (!store)
        store = std::make_shared<ParamStore>();

    CompiledGraph c =
        compileInferenceGraph(forward, output_ids, options, store);
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = options.numThreads;
    eopt.forceScalarTier = options.forceScalarTier;
    return InferenceProgram(std::move(c.graph), std::move(store),
                            std::move(eopt), std::move(c.report),
                            std::move(c.order));
}

} // namespace pe
