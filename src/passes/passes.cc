#include "passes/passes.h"

#include <algorithm>
#include <stdexcept>

#include "kernels/kernel.h"
#include "runtime/planner.h"

namespace pe {

std::vector<bool>
liveSet(const Graph &g)
{
    std::vector<bool> live(g.numNodes(), false);
    std::vector<int> stack = g.outputs();
    while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        if (live[id])
            continue;
        live[id] = true;
        for (int in : g.node(id).inputs)
            stack.push_back(in);
    }
    return live;
}

int
dce(Graph &g)
{
    auto live = liveSet(g);
    int removed = 0;
    for (bool l : live) {
        if (!l)
            ++removed;
    }
    if (removed)
        g.compact(live);
    return removed;
}

namespace {

bool
isConstValue(const Graph &g, int id, float value)
{
    const Node &n = g.node(id);
    if (n.op != OpKind::Const || !g.hasConstData(id))
        return false;
    const Tensor &t = g.constData(id);
    for (int64_t i = 0; i < t.size(); ++i) {
        if (t[i] != value)
            return false;
    }
    return true;
}

void
toIdentity(Graph &g, int id, int src)
{
    Node &n = g.node(id);
    n.op = OpKind::Identity;
    n.inputs = {src};
    n.attrs = Attrs{};
}

} // namespace

int
simplify(Graph &g)
{
    int rewrites = 0;
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &n = g.node(id);
        if (n.op == OpKind::Mul) {
            for (int side = 0; side < 2; ++side) {
                int c = n.inputs[side], x = n.inputs[1 - side];
                if (isConstValue(g, c, 1.0f) &&
                    g.node(x).shape == n.shape) {
                    toIdentity(g, id, x);
                    ++rewrites;
                    break;
                }
            }
        } else if (n.op == OpKind::Add) {
            for (int side = 0; side < 2; ++side) {
                int c = n.inputs[side], x = n.inputs[1 - side];
                if (isConstValue(g, c, 0.0f) &&
                    g.node(x).shape == n.shape) {
                    toIdentity(g, id, x);
                    ++rewrites;
                    break;
                }
            }
        } else if (n.op == OpKind::Scale &&
                   n.attrs.getFloat("alpha", 1.0) == 1.0) {
            toIdentity(g, id, n.inputs[0]);
            ++rewrites;
        }
    }
    // Bypass Identity chains.
    auto resolve = [&](int id) {
        while (g.node(id).op == OpKind::Identity)
            id = g.node(id).inputs[0];
        return id;
    };
    for (int id = 0; id < g.numNodes(); ++id) {
        for (int &in : g.node(id).inputs) {
            int r = resolve(in);
            if (r != in) {
                in = r;
                ++rewrites;
            }
        }
    }
    for (int &out : g.outputs())
        out = resolve(out);
    return rewrites;
}

int
constantFold(Graph &g)
{
    detail::ensureKernelsRegistered();
    int folded = 0;
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &n = g.node(id);
        if (isSourceOp(n.op) || isInPlaceOp(n.op) || n.inputs.empty())
            continue;
        bool all_const = true;
        for (int in : n.inputs) {
            if (g.node(in).op != OpKind::Const || !g.hasConstData(in)) {
                all_const = false;
                break;
            }
        }
        if (!all_const)
            continue;
        KernelCtx ctx;
        ctx.node = &n;
        for (int in : n.inputs) {
            ctx.in.push_back(g.constData(in).data());
            ctx.inShapes.push_back(&g.node(in).shape);
        }
        Tensor out(n.shape);
        ctx.out = out.data();
        ctx.outShape = &n.shape;
        DirectWorkspace ws;
        ws.attach(ctx, g, n, "");
        lookupKernel(n.op, "")(ctx);
        Shape shape = n.shape;
        n.op = OpKind::Const;
        n.inputs.clear();
        Attrs a;
        a.set("shape", shape);
        n.attrs = std::move(a);
        g.setConstData(id, std::move(out));
        ++folded;
    }
    return folded;
}

namespace {

/** Map an activation op to its fused-op act code; kActNone if n/a. */
int64_t
actCodeOf(OpKind op)
{
    switch (op) {
      case OpKind::Relu:
        return kActRelu;
      case OpKind::Gelu:
        return kActGelu;
      case OpKind::Silu:
        return kActSilu;
      default:
        return kActNone;
    }
}

OpKind
fusedKindOf(OpKind linear)
{
    switch (linear) {
      case OpKind::Conv2d:
        return OpKind::ConvBiasAct;
      case OpKind::DwConv2d:
        return OpKind::DwConvBiasAct;
      case OpKind::MatMul:
        return OpKind::MatMulBiasAct;
      default:
        return OpKind::Identity;
    }
}

/** Output-channel count of a linear node, for bias validation. */
int64_t
channelsOf(const Graph &, const Node &linear)
{
    if (linear.op == OpKind::MatMul)
        return linear.shape.back();
    return linear.shape[1]; // NCHW
}

} // namespace

int
fuseOperators(Graph &g)
{
    int fused = 0;
    auto users = g.consumers();
    std::vector<bool> is_output(g.numNodes(), false);
    for (int o : g.outputs())
        is_output[o] = true;

    auto singleUse = [&](int id) {
        return users[id].size() == 1 && !is_output[id];
    };
    auto isBiasFor = [&](int bias, const Node &linear) {
        const Node &b = g.node(bias);
        if (b.op != OpKind::Param && b.op != OpKind::Const)
            return false;
        return numel(b.shape) == channelsOf(g, linear) &&
               broadcastableTo(b.shape, linear.shape);
    };

    // Pattern: Act(Add(linear, bias)) and bare Add(linear, bias).
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &root = g.node(id);
        int64_t act = actCodeOf(root.op);
        int add_id = -1;
        if (act != kActNone) {
            int in0 = root.inputs[0];
            if (g.node(in0).op == OpKind::Add && singleUse(in0))
                add_id = in0;
        } else if (root.op == OpKind::Add) {
            // Leave bias-Adds that feed a single activation to the
            // activation root so the act gets fused in too.
            if (users[id].size() == 1 &&
                actCodeOf(g.node(users[id][0]).op) != kActNone) {
                continue;
            }
            add_id = id;
        }
        if (add_id < 0)
            continue;

        const Node &add = g.node(add_id);
        for (int side = 0; side < 2; ++side) {
            int lin_id = add.inputs[side];
            int bias_id = add.inputs[1 - side];
            const Node &lin = g.node(lin_id);
            OpKind fk = fusedKindOf(lin.op);
            if (fk == OpKind::Identity || !singleUse(lin_id) ||
                !isBiasFor(bias_id, lin)) {
                continue;
            }
            // Rewrite the root node into the fused op. The fused
            // value IS the root's value, so the root's calibration
            // range (stamped by quant calibration before fusion) must
            // override the linear node's pre-bias/pre-act range.
            Attrs attrs = lin.attrs;
            attrs.set("act", act);
            if (root.attrs.has(kCalibMinAttr) &&
                root.attrs.has(kCalibMaxAttr)) {
                attrs.set(kCalibMinAttr,
                          root.attrs.getFloat(kCalibMinAttr, 0.0));
                attrs.set(kCalibMaxAttr,
                          root.attrs.getFloat(kCalibMaxAttr, 0.0));
            }
            Shape shape = root.shape;
            root.op = fk;
            root.inputs = {lin.inputs[0], lin.inputs[1], bias_id};
            root.attrs = std::move(attrs);
            root.shape = shape;
            ++fused;
            break;
        }
    }
    return fused;
}

int
fuseAttention(Graph &g)
{
    int fused = 0;
    auto users = g.consumers();
    std::vector<bool> is_output(g.numNodes(), false);
    for (int o : g.outputs())
        is_output[o] = true;

    auto singleUse = [&](int id) {
        return users[id].size() == 1 && !is_output[id];
    };
    auto isMatmul = [](const Node &n) {
        return n.op == OpKind::MatMul || n.op == OpKind::BatchMatMul;
    };

    // Head-split sink. The canonical decode head split materializes
    // K/V as permuted [L*H,M,Dh] copies — and the fused op, consuming
    // both at once, would keep the two slabs live simultaneously where
    // the unfused chain frees K's copy (at the QK matmul) before V's
    // is built. Sinking the split into the kernel — which then reads
    // the [L,M,H*Dh] cache slab with head-strided rows — deletes both
    // copies from the arena, so the fused plan's peak-live drops below
    // the unfused plan's instead of above it. Value-for-value the
    // reads are identical, so bit parity with the copies is preserved.
    //
    // Matches exactly reshape{L*H,M,Dh}(permute{0,2,1,3}(
    // reshape{L,M,H,Dh}(src[L,M,H*Dh]))); returns src or -1.
    auto sinkSplit = [&](int id, int64_t &L, int64_t &H, int64_t &M,
                         int64_t &Dh) -> int {
        const Node &rs2 = g.node(id);
        if (rs2.op != OpKind::Reshape || !singleUse(id) ||
            rs2.shape.size() != 3)
            return -1;
        int p_id = rs2.inputs[0];
        const Node &p = g.node(p_id);
        if (p.op != OpKind::Permute || !singleUse(p_id) ||
            p.attrs.getInts("perm") != std::vector<int64_t>{0, 2, 1, 3})
            return -1;
        int rs1_id = p.inputs[0];
        const Node &rs1 = g.node(rs1_id);
        if (rs1.op != OpKind::Reshape || !singleUse(rs1_id) ||
            rs1.shape.size() != 4)
            return -1;
        int64_t l = rs1.shape[0], m = rs1.shape[1];
        int64_t h = rs1.shape[2], dh = rs1.shape[3];
        int src = rs1.inputs[0];
        if (rs2.shape != Shape{l * h, m, dh} ||
            g.node(src).shape != Shape{l, m, h * dh})
            return -1;
        L = l;
        H = h;
        M = m;
        Dh = dh;
        return src;
    };
    // The per-head mask broadcast: reshape{L*H,1,M}(BroadcastTo{L,H,M}(
    // reshape{L,1,M}(src[L,M]))); returns src or -1.
    auto sinkMask = [&](int id, int64_t L, int64_t H,
                        int64_t M) -> int {
        const Node &rs2 = g.node(id);
        if (rs2.op != OpKind::Reshape || !singleUse(id) ||
            rs2.shape != Shape{L * H, 1, M})
            return -1;
        int bc_id = rs2.inputs[0];
        const Node &bc = g.node(bc_id);
        if (bc.op != OpKind::BroadcastTo || !singleUse(bc_id) ||
            bc.shape != Shape{L, H, M})
            return -1;
        int rs1_id = bc.inputs[0];
        const Node &rs1 = g.node(rs1_id);
        if (rs1.op != OpKind::Reshape || !singleUse(rs1_id) ||
            rs1.shape != Shape{L, 1, M})
            return -1;
        int src = rs1.inputs[0];
        if (g.node(src).shape != Shape{L, M})
            return -1;
        return src;
    };

    // Root the match at the P*V matmul and walk the chain upward.
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &root = g.node(id);
        if (!isMatmul(root) || root.attrs.getInt("transA", 0) ||
            root.attrs.getInt("transB", 0)) {
            continue;
        }
        int sm_id = root.inputs[0];
        const Node &sm = g.node(sm_id);
        if (sm.op != OpKind::Softmax || !singleUse(sm_id))
            continue;
        int add_id = sm.inputs[0];
        const Node &add = g.node(add_id);
        if (add.op != OpKind::Add || !singleUse(add_id))
            continue;
        // Scale on either side of the mask-Add.
        int sc_id = -1, mask_id = -1;
        for (int side = 0; side < 2; ++side) {
            if (g.node(add.inputs[side]).op == OpKind::Scale) {
                sc_id = add.inputs[side];
                mask_id = add.inputs[1 - side];
                break;
            }
        }
        if (sc_id < 0 || !singleUse(sc_id))
            continue;
        const Node &sc = g.node(sc_id);
        int qk_id = sc.inputs[0];
        const Node &qk = g.node(qk_id);
        if (!isMatmul(qk) || qk.op != root.op || !singleUse(qk_id) ||
            qk.attrs.getInt("transA", 0) ||
            !qk.attrs.getInt("transB", 0)) {
            continue;
        }

        int q_id = qk.inputs[0], k_id = qk.inputs[1];
        int v_id = root.inputs[1];
        const Shape &qsh = g.node(q_id).shape;
        const Shape &ksh = g.node(k_id).shape;
        const Shape &vsh = g.node(v_id).shape;
        const Shape &msh = g.node(mask_id).shape;
        // The fused kernel reads the mask row-for-row with the scores
        // (no broadcasting) and K/V as equal [.., M, Dh] slabs.
        if (ksh != vsh || msh != qk.shape)
            continue;
        size_t r = qsh.size();
        if ((r != 2 && r != 3) || ksh.size() != r)
            continue;

        Attrs attrs;
        attrs.set("scale", sc.attrs.getFloat("alpha", 1.0));
        if (root.attrs.has(kCalibMinAttr) &&
            root.attrs.has(kCalibMaxAttr)) {
            attrs.set(kCalibMinAttr,
                      root.attrs.getFloat(kCalibMinAttr, 0.0));
            attrs.set(kCalibMaxAttr,
                      root.attrs.getFloat(kCalibMaxAttr, 0.0));
        }
        Shape shape = root.shape;
        root.op = OpKind::FusedAttention;
        root.inputs = {q_id, k_id, v_id, mask_id};
        root.attrs = std::move(attrs);
        root.shape = shape;
        ++fused;

        // If K and V arrive through the canonical decode head split
        // and the mask through the matching per-head broadcast, feed
        // the kernel the pre-split sources directly (Q's reshape is a
        // free alias and stays). DCE collects the dead chains.
        int64_t kl, kh, km, kdh, vl, vh, vm, vdh;
        int k_src = sinkSplit(k_id, kl, kh, km, kdh);
        int v_src = sinkSplit(v_id, vl, vh, vm, vdh);
        if (k_src >= 0 && v_src >= 0 && kl == vl && kh == vh &&
            km == vm && kdh == vdh &&
            g.node(q_id).shape == Shape{kl * kh, 1, kdh}) {
            int m_src = sinkMask(mask_id, kl, kh, km);
            if (m_src >= 0) {
                root.inputs = {q_id, k_src, v_src, m_src};
                root.attrs.set("heads", kh);
            }
        }
    }
    return fused;
}

std::vector<int>
naturalOrder(const Graph &g)
{
    return g.topoOrder();
}

std::vector<int>
reorderForMemory(const Graph &g)
{
    detail::countReorderInvocation();
    int n = g.numNodes();
    auto users = g.consumers();
    std::vector<bool> is_output(n, false);
    for (int o : g.outputs())
        is_output[o] = true;

    auto isArena = [&](int id) {
        const Node &node = g.node(id);
        return !isSourceOp(node.op) && !isInPlaceOp(node.op);
    };

    std::vector<int> remaining_inputs(n, 0);
    std::vector<int> remaining_users(n, 0);
    for (int id = 0; id < n; ++id) {
        remaining_inputs[id] = static_cast<int>(g.node(id).inputs.size());
        remaining_users[id] = static_cast<int>(users[id].size());
    }

    std::vector<bool> scheduled(n, false);
    std::vector<int> ready;
    for (int id = 0; id < n; ++id) {
        if (remaining_inputs[id] == 0)
            ready.push_back(id);
    }

    // An in-place op mutates its parameter; it may only run after
    // every other reader of that parameter within the step.
    auto inPlaceReady = [&](int id) {
        const Node &node = g.node(id);
        if (!isInPlaceOp(node.op))
            return true;
        for (int u : users[node.inputs[0]]) {
            if (u != id && !scheduled[u])
                return false;
        }
        return true;
    };

    std::vector<int> order;
    order.reserve(n);
    while (!ready.empty()) {
        int best = -1;
        int64_t best_score = 0;
        bool best_inplace = false;
        size_t best_pos = 0;
        for (size_t i = 0; i < ready.size(); ++i) {
            int id = ready[i];
            if (!inPlaceReady(id))
                continue;
            const Node &node = g.node(id);
            bool inplace = isInPlaceOp(node.op);
            int64_t alloc =
                isArena(id) ? numel(node.shape) * dtypeSize(node.dtype)
                            : 0;
            int64_t freed = 0;
            for (int in : node.inputs) {
                if (remaining_users[in] == 1 && isArena(in) &&
                    !is_output[in]) {
                    freed += numel(g.node(in).shape) *
                             dtypeSize(g.node(in).dtype);
                }
            }
            int64_t score = freed - alloc;
            bool better;
            if (best < 0) {
                better = true;
            } else if (inplace != best_inplace) {
                better = inplace; // updates first: recycle grads now
            } else {
                better = score > best_score ||
                         (score == best_score && id < best);
            }
            if (better) {
                best = id;
                best_score = score;
                best_inplace = inplace;
                best_pos = i;
            }
        }
        if (best < 0)
            throw std::runtime_error("reorderForMemory: deadlock");
        ready.erase(ready.begin() + static_cast<long>(best_pos));
        scheduled[best] = true;
        order.push_back(best);
        for (int in : g.node(best).inputs)
            --remaining_users[in];
        for (int u : users[best]) {
            if (--remaining_inputs[u] == 0)
                ready.push_back(u);
        }
    }
    if (static_cast<int>(order.size()) != n)
        throw std::runtime_error("reorderForMemory: cycle detected");
    return order;
}

std::vector<std::string>
switchBackends(Graph &g, const BackendOptions &opts, PassStats *stats)
{
    std::vector<std::string> variants(g.numNodes());
    for (int id = 0; id < g.numNodes(); ++id) {
        Node &n = g.node(id);
        if (n.op == OpKind::Conv2d || n.op == OpKind::ConvBiasAct) {
            if (opts.enableWinograd) {
                const Node &w = g.node(n.inputs[1]);
                bool frozen = w.op == OpKind::Param && !w.trainable;
                bool shape_ok = w.shape[2] == 3 && w.shape[3] == 3 &&
                                n.attrs.getInt("stride", 1) == 1;
                if (frozen && shape_ok) {
                    variants[id] = "winograd";
                    n.attrs.set("staticWeight",
                                static_cast<int64_t>(1));
                    if (stats)
                        ++stats->winogradBound;
                }
            }
            if (variants[id].empty() && n.op == OpKind::Conv2d &&
                opts.enableBlocked &&
                numel(n.shape) / n.shape[0] >=
                    opts.blockedMinDim * opts.blockedMinDim) {
                // Winograd-ineligible convs with a big enough
                // per-image output lower to im2col — the variant the
                // SIMD tier upgrades ("im2col@avx2"/"@neon"); the
                // direct kernel's partition domain is incompatible,
                // so a direct-bound conv can never reach the tier.
                variants[id] = "im2col";
                if (stats)
                    ++stats->im2colBound;
            }
        } else if ((n.op == OpKind::MatMul ||
                    n.op == OpKind::BatchMatMul) &&
                   opts.enableBlocked) {
            if (numel(n.shape) >=
                opts.blockedMinDim * opts.blockedMinDim) {
                variants[id] = "blocked";
                if (stats)
                    ++stats->blockedBound;
            }
        } else if (isQuantComputeOp(n.op)) {
            // Quant compute ops want the real int8 kernels (every
            // quant compute op has one, depthwise included). Should a
            // future op ship without its int8 kernel, bind falls back
            // to the dequant->fp32->requant reference kernel and the
            // fallback counters surface exactly that.
            variants[id] = "int8";
            if (stats)
                ++stats->int8Bound;
        }
    }
    return variants;
}

} // namespace pe
