/**
 * @file
 * Training-graph optimization passes (paper Section 3.2).
 *
 * All passes run at compile time on the unified IR, after autodiff:
 *  - dce():            dead-code elimination; with a sparse update
 *                      scheme this is what physically removes frozen
 *                      layers' gradient subgraphs and activation
 *                      buffers (Section 2.6 / 3.1).
 *  - simplify():       algebraic identities (x*1, x+0, Identity
 *                      chains) — cleans up autodiff seeds.
 *  - fuseOperators():  Conv/DwConv/MatMul + bias + activation fusion.
 *  - reorderForMemory(): memory-aware list scheduling; applies each
 *                      parameter update as soon as its gradient is
 *                      ready so gradient buffers are recycled
 *                      ("Operator Reordering and In-place Update").
 *  - switchBackends(): per-node kernel-variant selection, including
 *                      binding frozen 3x3 convolutions to Winograd.
 *  - constantFold():   evaluate Const-only subgraphs at compile time.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/graph.h"
#include "quant/quant.h"

namespace pe {

class ParamStore;

/** Per-pass bookkeeping, aggregated by the engine for reporting. */
struct PassStats {
    int nodesRemoved = 0;
    int nodesFused = 0;
    int nodesFolded = 0;
    int winogradBound = 0;
    int blockedBound = 0;
    int int8Bound = 0;   ///< quant compute ops bound to "int8" variants
    int im2colBound = 0; ///< convs bound to the "im2col" GEMM lowering
};

/** Nodes reachable from the graph outputs (plus in-place effects). */
std::vector<bool> liveSet(const Graph &g);

/** Remove unreachable nodes. @return number removed. */
int dce(Graph &g);

/** Algebraic simplifications; run before fusion. @return rewrites. */
int simplify(Graph &g);

/**
 * Fuse (Conv2d|DwConv2d|MatMul) + bias-Add [+ activation] into the
 * fused ops. Only fires when the intermediate values have no other
 * consumers — in a training graph that is exactly the frozen layers
 * plus every layer whose pre-activation is not needed by backward
 * (ReLU layers qualify; see autodiff.cc).
 * @return number of fusions performed.
 */
int fuseOperators(Graph &g);

/**
 * Collapse the five-op scaled-dot-product attention subgraph
 *
 *   (Batch)MatMul(Q, K, transB=1) -> Scale -> Add(mask) -> Softmax
 *     -> (Batch)MatMul(., V)
 *
 * into one FusedAttention node (scale attr from the Scale's alpha).
 * The root matmul is rewritten in place, so its id, name, output
 * status, and calibration range survive; the dead intermediates are
 * left for dce(). Old graphs and plan files keep working: the
 * unfused ops and kernels all remain registered, and plans serialize
 * whichever form the compile produced.
 * @return number of attention subgraphs fused.
 */
int fuseAttention(Graph &g);

/** Evaluate nodes whose inputs are all data-carrying Consts. */
int constantFold(Graph &g);

/**
 * Memory-aware list scheduling. Greedy: among ready nodes, prefer
 * in-place parameter updates, then the node with the best
 * (bytes freed - bytes allocated) balance.
 */
std::vector<int> reorderForMemory(const Graph &g);

/** The unoptimized baseline order (creation order). */
std::vector<int> naturalOrder(const Graph &g);

/** Backend-switching options. */
struct BackendOptions {
    bool enableWinograd = true; ///< frozen 3x3 s1 convs -> Winograd
    bool enableBlocked = true;  ///< large GEMMs -> blocked variant
    int64_t blockedMinDim = 64; ///< GEMM size threshold
};

/**
 * Choose a kernel variant per node. Frozen-weight 3x3 stride-1
 * convolutions get "winograd" (weight transform cached across steps);
 * large GEMMs get "blocked"; quant compute ops get "int8" (ops whose
 * int8 kernel is not registered fall back to the dequant->fp32->
 * requant reference kernel, surfaced via CompileReport's fallback
 * counters); everything else keeps the default.
 */
std::vector<std::string> switchBackends(Graph &g,
                                        const BackendOptions &opts,
                                        PassStats *stats = nullptr);

// ---- QuantizePass (src/passes/quantize.cc) ---------------------------

/** Configuration of the graph quantization rewrite. */
struct QuantizeOptions {
    Precision precision = Precision::Int8;
    /**
     * Forward-region root: only ancestors of this node are rewritten,
     * which is what keeps the sparse-BP backward graph (descendants
     * of the loss) in fp32. -1 = ancestors of all graph outputs
     * (inference graphs).
     */
    int root = -1;
    /**
     * Quantize frozen Param weights at compile time into i8 Const
     * nodes (deployment shape: the fp32 masters drop out of the
     * graph, and out of the reported parameter footprint, after DCE).
     * Requires @p store for the weight values; trainable weights are
     * always re-quantized at run time from their fp32 masters so
     * sparse-BP fine-tuning keeps working on a quantized forward.
     */
    bool prequantizeFrozen = false;
    /** Weight values for scale computation / prequantization. Null is
     *  allowed (analysis-only compiles): scales become placeholders. */
    const ParamStore *store = nullptr;
};

/** What the QuantizePass did — folded into the compile report. */
struct QuantizeStats {
    int quantizedOps = 0;        ///< compute nodes rewritten to int8
                                 ///< (or wrapped in f16 storage)
    int quantizeNodes = 0;       ///< Quantize nodes inserted
    int dequantizeNodes = 0;     ///< Dequantize nodes inserted
    int requantFolded = 0;       ///< Dequantize->Quantize chains folded
    int prequantizedWeights = 0; ///< weights folded to i8 Consts
};

/**
 * Rewrite the forward region of @p g to quantized storage.
 *
 * Int8: eligible ops (Conv2d/DwConv2d/MatMul, their fused BiasAct
 * forms, same-shape Add, Relu) whose values carry calibration attrs
 * (see calibrate()) are rewritten to the Quant* op set — int8
 * storage, int32 accumulation, per-output-channel weight scales.
 * Boundary Quantize/Dequantize nodes are inserted where quantized
 * values meet fp32 consumers (the backward graph, losses, pooling);
 * Dequantize->Quantize chains fold to Requantize (or nothing).
 *
 * F16: the same eligible ops keep fp32 compute but their outputs are
 * stored as f16 (Quantize/Dequantize casts) — a pure activation-
 * footprint mode.
 *
 * @return number of compute ops converted
 */
int quantizePass(Graph &g, const QuantizeOptions &opts,
                 QuantizeStats *stats = nullptr);

} // namespace pe
