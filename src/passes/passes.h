/**
 * @file
 * Training-graph optimization passes (paper Section 3.2).
 *
 * All passes run at compile time on the unified IR, after autodiff:
 *  - dce():            dead-code elimination; with a sparse update
 *                      scheme this is what physically removes frozen
 *                      layers' gradient subgraphs and activation
 *                      buffers (Section 2.6 / 3.1).
 *  - simplify():       algebraic identities (x*1, x+0, Identity
 *                      chains) — cleans up autodiff seeds.
 *  - fuseOperators():  Conv/DwConv/MatMul + bias + activation fusion.
 *  - reorderForMemory(): memory-aware list scheduling; applies each
 *                      parameter update as soon as its gradient is
 *                      ready so gradient buffers are recycled
 *                      ("Operator Reordering and In-place Update").
 *  - switchBackends(): per-node kernel-variant selection, including
 *                      binding frozen 3x3 convolutions to Winograd.
 *  - constantFold():   evaluate Const-only subgraphs at compile time.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/graph.h"

namespace pe {

/** Per-pass bookkeeping, aggregated by the engine for reporting. */
struct PassStats {
    int nodesRemoved = 0;
    int nodesFused = 0;
    int nodesFolded = 0;
    int winogradBound = 0;
    int blockedBound = 0;
};

/** Nodes reachable from the graph outputs (plus in-place effects). */
std::vector<bool> liveSet(const Graph &g);

/** Remove unreachable nodes. @return number removed. */
int dce(Graph &g);

/** Algebraic simplifications; run before fusion. @return rewrites. */
int simplify(Graph &g);

/**
 * Fuse (Conv2d|DwConv2d|MatMul) + bias-Add [+ activation] into the
 * fused ops. Only fires when the intermediate values have no other
 * consumers — in a training graph that is exactly the frozen layers
 * plus every layer whose pre-activation is not needed by backward
 * (ReLU layers qualify; see autodiff.cc).
 * @return number of fusions performed.
 */
int fuseOperators(Graph &g);

/** Evaluate nodes whose inputs are all data-carrying Consts. */
int constantFold(Graph &g);

/**
 * Memory-aware list scheduling. Greedy: among ready nodes, prefer
 * in-place parameter updates, then the node with the best
 * (bytes freed - bytes allocated) balance.
 */
std::vector<int> reorderForMemory(const Graph &g);

/** The unoptimized baseline order (creation order). */
std::vector<int> naturalOrder(const Graph &g);

/** Backend-switching options. */
struct BackendOptions {
    bool enableWinograd = true; ///< frozen 3x3 s1 convs -> Winograd
    bool enableBlocked = true;  ///< large GEMMs -> blocked variant
    int64_t blockedMinDim = 64; ///< GEMM size threshold
};

/**
 * Choose a kernel variant per node. Frozen-weight 3x3 stride-1
 * convolutions get "winograd" (weight transform cached across steps);
 * large GEMMs get "blocked"; everything else keeps the default.
 */
std::vector<std::string> switchBackends(Graph &g,
                                        const BackendOptions &opts,
                                        PassStats *stats = nullptr);

} // namespace pe
