/**
 * @file
 * QuantizePass: rewrite the forward region of a (possibly training)
 * graph to int8 or fp16 storage.
 *
 * The pass runs AFTER autodiff and fusion, so the backward graph
 * already exists in fp32 and consumes forward activations by node id.
 * Quantizing a forward node in place (same id, now i8) therefore
 * automatically makes the backward read the straight-through
 * estimate: each fp32 consumer gets its own Dequantize of the stored
 * i8 activation — exactly the paper's deployment shape, where int8
 * activations saved for sparse-BP are a 4x memory win over fp32.
 *
 * Weight handling splits by trainability: trainable weights keep
 * their fp32 master in the ParamStore and are re-quantized every step
 * by a runtime Quantize node (per-output-channel symmetric scales
 * fixed at compile time from the calibrated masters), so the in-place
 * optimizer updates flow into the next step's quantized forward.
 * Frozen weights can instead be pre-quantized into i8 Const nodes
 * (QuantizeOptions::prequantizeFrozen); DCE then drops the fp32
 * master from the graph and the parameter footprint.
 */

#include "passes/passes.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "runtime/paramstore.h"
#include "runtime/planner.h"

namespace pe {

namespace {

bool
hasCalib(const Node &n)
{
    if (!n.attrs.has(kCalibMinAttr) || !n.attrs.has(kCalibMaxAttr))
        return false;
    // Sentinel guard: attention masks ride through the graph as
    // -1e30f adds (so exp underflows to exact zero). A calibrated
    // range that wide would put the int8 step at ~1e28 — every real
    // value collapses into one bucket — so such tensors stay fp32.
    // This also keeps the fused-attention rewrite int8-invariant: the
    // mask-Add it swallows was never quantizable to begin with.
    double mn = n.attrs.getFloat(kCalibMinAttr, 0.0);
    double mx = n.attrs.getFloat(kCalibMaxAttr, 0.0);
    return std::abs(mn) < 1e20 && std::abs(mx) < 1e20;
}

QuantParams
outputQuantParams(const Node &n)
{
    return chooseQuantParams(
        static_cast<float>(n.attrs.getFloat(kCalibMinAttr, 0.0)),
        static_cast<float>(n.attrs.getFloat(kCalibMaxAttr, 0.0)));
}

/** Nodes in the ancestor cone of @p roots (inclusive). */
std::vector<bool>
ancestorSet(const Graph &g, std::vector<int> roots)
{
    std::vector<bool> in(g.numNodes(), false);
    while (!roots.empty()) {
        int id = roots.back();
        roots.pop_back();
        if (id < 0 || in[id])
            continue;
        in[id] = true;
        for (int i : g.node(id).inputs)
            roots.push_back(i);
    }
    return in;
}

/** The fp32 ops the pass knows how to quantize. */
bool
isQuantizableKind(OpKind op)
{
    switch (op) {
      case OpKind::Conv2d:
      case OpKind::ConvBiasAct:
      case OpKind::DwConv2d:
      case OpKind::DwConvBiasAct:
      case OpKind::MatMul:
      case OpKind::MatMulBiasAct:
      case OpKind::Add:
      case OpKind::Relu:
        return true;
      default:
        return false;
    }
}

OpKind
quantKindOf(OpKind op)
{
    switch (op) {
      case OpKind::Conv2d:
      case OpKind::ConvBiasAct:
        return OpKind::QuantConv2d;
      case OpKind::DwConv2d:
      case OpKind::DwConvBiasAct:
        return OpKind::QuantDwConv2d;
      case OpKind::MatMul:
      case OpKind::MatMulBiasAct:
        return OpKind::QuantMatMul;
      case OpKind::Add:
        return OpKind::QuantAdd;
      case OpKind::Relu:
        return OpKind::QuantRelu;
      default:
        return OpKind::Identity;
    }
}

/** True for ops that legally consume an i8 input (only the pass
 *  creates these, so any other consumer needs a Dequantize). */
bool
consumesQuantized(OpKind op)
{
    return isQuantComputeOp(op) || op == OpKind::Dequantize ||
           op == OpKind::Requantize;
}

/** Weight values for scale computation: Const data or ParamStore. */
const Tensor *
weightValues(const Graph &g, int wid, const ParamStore *store)
{
    const Node &w = g.node(wid);
    if (w.op == OpKind::Const && g.hasConstData(wid))
        return &g.constData(wid);
    if (w.op == OpKind::Param && store && store->has(w.name))
        return &store->get(w.name);
    return nullptr;
}

/** Per-channel max-abs over axis @p axis of @p t (rank <= 4). */
std::vector<float>
channelScales(const Tensor *t, const Shape &shape, int64_t axis)
{
    int64_t channels = shape[axis];
    std::vector<float> maxabs(static_cast<size_t>(channels), 0.0f);
    if (t) {
        int64_t inner = 1;
        for (size_t i = axis + 1; i < shape.size(); ++i)
            inner *= shape[i];
        for (int64_t i = 0; i < t->size(); ++i) {
            int64_t c = (i / inner) % channels;
            float a = std::fabs((*t)[i]);
            if (a > maxabs[c])
                maxabs[c] = a;
        }
    }
    std::vector<float> scales(maxabs.size());
    for (size_t c = 0; c < maxabs.size(); ++c)
        scales[c] = t ? chooseWeightScale(maxabs[c]) : 1.0f;
    return scales;
}

struct Int8Rewriter {
    Graph &g;
    const QuantizeOptions &opts;
    QuantizeStats &stats;
    /** Candidate set, fixed before any rewrite. */
    std::vector<bool> candidate;
    /** Producer id -> cached Quantize node for fp32 sources. */
    std::unordered_map<int, int> quantCache;
    /** Weight id -> (quantized weight id, scales const id). */
    std::unordered_map<int, std::pair<int, int>> weightCache;
    /** Quantized producer id -> cached output-boundary Dequantize. */
    std::unordered_map<int, int> outputDequant;

    /**
     * Resolve an i8 view of fp32 value @p src, plus the affine params
     * the consumer must use. Prefers (in order): the source itself if
     * it is (or will be) a quantized producer; folding through a
     * Dequantize (the DQ->Q chain becomes a Requantize, or nothing
     * when the params match); a cached/new Quantize node.
     */
    int
    quantizedInput(int src, QuantParams &qp)
    {
        const Node &s = g.node(src);
        if (candidate[src]) { // will be rewritten in place to i8
            qp = outputQuantParams(s);
            return src;
        }
        if (s.op == OpKind::Dequantize && s.inputs.size() == 1 &&
            g.node(s.inputs[0]).dtype == DType::I8) {
            // Fold Dequantize->Quantize: reuse the underlying i8
            // value, requantizing only if this consumer's calibrated
            // params differ from the stored ones.
            QuantParams have;
            have.scale =
                static_cast<float>(s.attrs.getFloat("xScale", 1.0));
            have.zeroPoint =
                static_cast<int32_t>(s.attrs.getInt("xZp", 0));
            QuantParams want = hasCalib(s) ? outputQuantParams(s) : have;
            ++stats.requantFolded;
            if (want.scale == have.scale &&
                want.zeroPoint == have.zeroPoint) {
                qp = have;
                return s.inputs[0];
            }
            Attrs a;
            a.set("xScale", static_cast<double>(have.scale));
            a.set("xZp", static_cast<int64_t>(have.zeroPoint));
            a.set("yScale", static_cast<double>(want.scale));
            a.set("yZp", static_cast<int64_t>(want.zeroPoint));
            qp = want;
            return g.add(OpKind::Requantize, {s.inputs[0]}, std::move(a));
        }
        qp = outputQuantParams(s);
        auto it = quantCache.find(src);
        if (it != quantCache.end())
            return it->second;
        Attrs a;
        a.set("dtype", std::string("i8"));
        a.set("yScale", static_cast<double>(qp.scale));
        a.set("yZp", static_cast<int64_t>(qp.zeroPoint));
        int q = g.add(OpKind::Quantize, {src}, std::move(a));
        quantCache[src] = q;
        ++stats.quantizeNodes;
        return q;
    }

    /**
     * I8 view of weight @p wid with per-channel scales along @p axis.
     * @return (qweight id, scales const id)
     */
    std::pair<int, int>
    quantizedWeight(int wid, int64_t axis)
    {
        auto it = weightCache.find(wid);
        if (it != weightCache.end())
            return it->second;
        // Copy what we need up front: g.add below may reallocate the
        // node table and invalidate references into it.
        const Shape wshape = g.node(wid).shape;
        const std::string wname = g.node(wid).name;
        const OpKind wop = g.node(wid).op;
        const bool wtrainable = g.node(wid).trainable;
        const Tensor *values = weightValues(g, wid, opts.store);
        Tensor values_copy; // stays valid if the const table rehashes
        if (values) {
            values_copy = *values;
            values = &values_copy;
        }
        std::vector<float> scales = channelScales(values, wshape, axis);
        int scales_id = g.constantOf(
            Tensor::fromVector({static_cast<int64_t>(scales.size())},
                               scales),
            wname.empty() ? "" : wname + ".qscale");

        bool frozen = wop == OpKind::Const ||
                      (wop == OpKind::Param && !wtrainable);
        int qid;
        if (opts.prequantizeFrozen && frozen && values) {
            // Deployment shape: bake the i8 weight into the graph;
            // DCE will drop the fp32 master entirely.
            Attrs a;
            a.set("shape", wshape);
            a.set("dtype", std::string("i8"));
            a.set("qaxis", axis);
            qid = g.add(OpKind::Const, {}, std::move(a),
                        wname.empty() ? "" : wname + ".q8");
            Tensor q(wshape);
            int64_t inner = 1;
            for (size_t i = axis + 1; i < wshape.size(); ++i)
                inner *= wshape[i];
            for (int64_t i = 0; i < values->size(); ++i) {
                int64_t c = (i / inner) % wshape[axis];
                q[i] = static_cast<float>(
                    quantizeValue((*values)[i], scales[c], 0));
            }
            g.setConstData(qid, std::move(q));
            ++stats.prequantizedWeights;
        } else {
            Attrs a;
            a.set("dtype", std::string("i8"));
            a.set("qaxis", axis);
            qid = g.add(OpKind::Quantize, {wid, scales_id}, std::move(a));
            ++stats.quantizeNodes;
        }
        weightCache[wid] = {qid, scales_id};
        return {qid, scales_id};
    }

    void
    setQuantAttrs(Attrs &a, const char *scale_key, const char *zp_key,
                  const QuantParams &qp)
    {
        a.set(scale_key, static_cast<double>(qp.scale));
        a.set(zp_key, static_cast<int64_t>(qp.zeroPoint));
    }

    /** Rewrite candidate @p id in place to its Quant* form. */
    void
    rewrite(int id)
    {
        // Copy the node's pre-rewrite state: the helper calls below
        // add nodes and may reallocate the node table.
        const OpKind orig_op = g.node(id).op;
        const std::vector<int> orig_inputs = g.node(id).inputs;
        Attrs a = g.node(id).attrs; // stride/pad/trans/act + calib
        OpKind qk = quantKindOf(orig_op);
        QuantParams y = outputQuantParams(g.node(id));

        std::vector<int> inputs;
        switch (qk) {
          case OpKind::QuantAdd: {
            QuantParams qa, qb;
            int ia = quantizedInput(orig_inputs[0], qa);
            int ib = quantizedInput(orig_inputs[1], qb);
            inputs = {ia, ib};
            setQuantAttrs(a, "xScale", "xZp", qa);
            setQuantAttrs(a, "bScale", "bZp", qb);
            break;
          }
          case OpKind::QuantRelu: {
            QuantParams qa;
            inputs = {quantizedInput(orig_inputs[0], qa)};
            setQuantAttrs(a, "xScale", "xZp", qa);
            break;
          }
          default: { // conv / dwconv / matmul forms
            bool fused = orig_op == OpKind::ConvBiasAct ||
                         orig_op == OpKind::DwConvBiasAct ||
                         orig_op == OpKind::MatMulBiasAct;
            int wid = orig_inputs[1];
            int64_t axis = 0;
            if (qk == OpKind::QuantMatMul)
                axis = a.getInt("transB", 0) != 0 ? 0 : 1;
            QuantParams qa;
            int ia = quantizedInput(orig_inputs[0], qa);
            auto [qw, scales_id] = quantizedWeight(wid, axis);
            inputs = {ia, qw};
            if (fused)
                inputs.push_back(orig_inputs[2]); // fp32 bias
            inputs.push_back(scales_id);
            setQuantAttrs(a, "xScale", "xZp", qa);
            a.set("wScale", 1.0); // per-channel scales in use
            a.set("hasBias", static_cast<int64_t>(fused ? 1 : 0));
            a.set("perChannel", static_cast<int64_t>(1));
            if (!a.has("act"))
                a.set("act", static_cast<int64_t>(kActNone));
            break;
          }
        }
        setQuantAttrs(a, "yScale", "yZp", y);

        Node &node = g.node(id);
        node.op = qk;
        node.inputs = std::move(inputs);
        node.attrs = std::move(a);
        node.dtype = DType::I8;
        ++stats.quantizedOps;
    }

    /** Dequantize for fp32 consumers / graph outputs of @p id. */
    int
    makeDequant(int id)
    {
        const Node &n = g.node(id);
        QuantParams y;
        y.scale = static_cast<float>(n.attrs.getFloat("yScale", 1.0));
        y.zeroPoint = static_cast<int32_t>(n.attrs.getInt("yZp", 0));
        Attrs a;
        a.set("dtype", std::string("i8"));
        setQuantAttrs(a, "xScale", "xZp", y);
        ++stats.dequantizeNodes;
        return g.add(OpKind::Dequantize, {id}, std::move(a));
    }
};

int
quantizeInt8(Graph &g, const QuantizeOptions &opts, QuantizeStats &stats)
{
    std::vector<int> roots =
        opts.root >= 0 ? std::vector<int>{opts.root} : g.outputs();
    std::vector<bool> forward = ancestorSet(g, std::move(roots));

    Int8Rewriter rw{g, opts, stats, {}, {}, {}, {}};
    rw.candidate.assign(g.numNodes(), false);
    int preexisting = g.numNodes();
    for (int id = 0; id < preexisting; ++id) {
        const Node &n = g.node(id);
        if (!forward[id] || !isQuantizableKind(n.op) || !hasCalib(n) ||
            n.dtype != DType::F32) {
            continue;
        }
        bool ok = true;
        switch (quantKindOf(n.op)) {
          case OpKind::QuantAdd:
            ok = g.node(n.inputs[0]).shape == n.shape &&
                 g.node(n.inputs[1]).shape == n.shape &&
                 hasCalib(g.node(n.inputs[0])) &&
                 hasCalib(g.node(n.inputs[1]));
            break;
          case OpKind::QuantRelu:
            ok = hasCalib(g.node(n.inputs[0]));
            break;
          case OpKind::QuantMatMul: {
            const Node &w = g.node(n.inputs[1]);
            ok = n.attrs.getInt("transA", 0) == 0 &&
                 (w.op == OpKind::Param || w.op == OpKind::Const) &&
                 hasCalib(g.node(n.inputs[0]));
            break;
          }
          default: { // conv forms
            const Node &w = g.node(n.inputs[1]);
            ok = (w.op == OpKind::Param || w.op == OpKind::Const) &&
                 hasCalib(g.node(n.inputs[0]));
            break;
          }
        }
        rw.candidate[id] = ok;
    }

    // Rewrite every candidate in place (order is irrelevant: inputs
    // are resolved through calibration attrs, not rewritten nodes).
    for (int id = 0; id < preexisting; ++id) {
        if (rw.candidate[id])
            rw.rewrite(id);
    }

    // Wire fp32 consumers of quantized values through per-consumer
    // Dequantize nodes (per consumer, not per producer, so the fp32
    // copy lives only around its single use — the stored activation
    // the backward waits on stays i8).
    int wired = g.numNodes();
    for (int cid = 0; cid < wired; ++cid) {
        OpKind cop = g.node(cid).op;
        if (consumesQuantized(cop) || cop == OpKind::Quantize)
            continue;
        // Index-based: makeDequant adds nodes, which may invalidate
        // references/iterators into the node table.
        int dq = -1;
        size_t slots = g.node(cid).inputs.size();
        for (size_t s = 0; s < slots; ++s) {
            int in = g.node(cid).inputs[s];
            if (g.node(in).dtype != DType::I8)
                continue;
            if (dq < 0 || g.node(dq).inputs[0] != in)
                dq = rw.makeDequant(in);
            g.node(cid).inputs[s] = dq;
        }
    }
    for (int &out : g.outputs()) {
        if (g.node(out).dtype != DType::I8)
            continue;
        auto it = rw.outputDequant.find(out);
        if (it == rw.outputDequant.end())
            it = rw.outputDequant.emplace(out, rw.makeDequant(out)).first;
        out = it->second;
    }
    return stats.quantizedOps;
}

int
quantizeF16(Graph &g, const QuantizeOptions &opts, QuantizeStats &stats)
{
    std::vector<int> roots =
        opts.root >= 0 ? std::vector<int>{opts.root} : g.outputs();
    std::vector<bool> forward = ancestorSet(g, std::move(roots));

    int preexisting = g.numNodes();
    std::vector<bool> is_output(g.numNodes(), false);
    for (int o : g.outputs())
        is_output[o] = true;

    // For each eligible activation X: store X as f16 (one Quantize
    // cast), and give every consumer its own Dequantize so the fp32
    // copies live only around their uses. X itself dies immediately
    // after the cast — the value that persists (e.g. for backward) is
    // the half-precision one.
    std::unordered_map<int, int> castOf; // X -> f16 Quantize id
    for (int id = 0; id < preexisting; ++id) {
        const Node &n = g.node(id);
        if (!forward[id] || !isQuantizableKind(n.op) ||
            n.dtype != DType::F32 || is_output[id]) {
            continue;
        }
        Attrs a;
        a.set("dtype", std::string("f16"));
        castOf[id] = g.add(OpKind::Quantize, {id}, std::move(a));
        ++stats.quantizeNodes;
        ++stats.quantizedOps;
    }
    int wired = g.numNodes();
    for (int cid = 0; cid < wired; ++cid) {
        OpKind cop = g.node(cid).op;
        if (cop == OpKind::Quantize || cop == OpKind::Dequantize)
            continue;
        size_t slots = g.node(cid).inputs.size();
        for (size_t s = 0; s < slots; ++s) {
            auto it = castOf.find(g.node(cid).inputs[s]);
            if (it == castOf.end())
                continue;
            Attrs a;
            a.set("dtype", std::string("f16"));
            int dq =
                g.add(OpKind::Dequantize, {it->second}, std::move(a));
            ++stats.dequantizeNodes;
            g.node(cid).inputs[s] = dq;
        }
    }
    return stats.quantizedOps;
}

} // namespace

int
quantizePass(Graph &g, const QuantizeOptions &opts, QuantizeStats *stats)
{
    detail::countQuantizePassInvocation();
    QuantizeStats local;
    QuantizeStats &s = stats ? *stats : local;
    switch (opts.precision) {
      case Precision::F32:
        return 0;
      case Precision::F16:
        return quantizeF16(g, opts, s);
      case Precision::Int8:
        return quantizeInt8(g, opts, s);
    }
    throw std::runtime_error("quantizePass: bad precision");
}

} // namespace pe
