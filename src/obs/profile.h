/**
 * @file
 * Profile aggregation: fold a TraceBuffer into per-step and
 * per-op-type attribution tables — where the time went inside a run,
 * achieved GFLOP/s vs the graph's analytical FLOPs, and the bytes
 * each step touches (output placement + planned workspace).
 *
 * profileTrace() is pure analysis over a finished trace: it reads the
 * executor's compiled facts (graph, memory plan) and the recorded
 * step spans, and never perturbs execution. The report prints as an
 * aligned table (plan_tool profile), a one-paragraph summary
 * (quickstart / vision_transfer), or JSON (dashboards, CI artifacts).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pe {

class Executor;

/** One kernel step's aggregated profile (all runs folded). */
struct ProfileStepRow {
    int stepIndex = -1;
    int node = -1;
    std::string op;
    std::string variant; ///< bound kernel variant incl. SIMD tier
    int shards = 1;
    int64_t calls = 0;   ///< step spans folded into this row
    int64_t totalNs = 0; ///< summed wall time across calls
    double timeShare = 0;    ///< totalNs / report total
    double flops = 0;        ///< analytical FLOPs per call (nodeFlops)
    double gflops = 0;       ///< achieved: calls * flops / totalNs
    int64_t outBytes = 0;    ///< the step's output placement bytes
    int64_t workspaceBytes = 0; ///< planned scratch: shards * perShard
                                ///< + shared region
};

/** One op type's aggregated profile (rows merged across steps). */
struct ProfileOpRow {
    std::string op;
    int steps = 0;
    int64_t calls = 0;
    int64_t totalNs = 0;
    double timeShare = 0;
    double gflops = 0;
};

/**
 * The folded profile of one traced context. Time shares are over the
 * summed STEP span time, which is also the coverage numerator
 * plan_tool profile compares against measured wall time (the
 * acceptance bar: spans explain >= 95% of the wall).
 */
struct ProfileReport {
    int64_t runs = 0;      ///< distinct run ids seen in the trace
    int64_t stepSpans = 0; ///< step spans folded
    int64_t droppedSpans = 0; ///< ring overwrites (capacity too small)
    int64_t totalNs = 0;      ///< summed step wall time
    double flopsPerStep = 0;  ///< analytical graph FLOPs per run
    /** Achieved GFLOP/s over the whole trace (flops-weighted). */
    double gflops = 0;
    int kernelFallbacks = 0;
    std::string fallbackBreakdown; ///< "op/variant xN, ..." ("" = none)
    std::vector<ProfileStepRow> steps; ///< in execution order
    std::vector<ProfileOpRow> ops;     ///< by time, descending

    /** Aligned per-step + per-op tables (plan_tool profile). */
    std::string table() const;

    /** Top-@p topN ops by time + fallbacks, a few lines — what the
     *  examples print after their runs. */
    std::string summary(int topN = 5) const;

    /** The whole report as a JSON object. */
    std::string json() const;
};

/**
 * Fold @p trace (recorded by contexts of @p ex) into a ProfileReport.
 * Only Step spans aggregate; Shard spans refine the picture in the
 * Chrome export but would double-count wall time here.
 */
ProfileReport profileTrace(const Executor &ex,
                           const TraceBuffer &trace);

} // namespace pe
