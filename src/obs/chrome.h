/**
 * @file
 * Chrome-trace export: serialize recorded spans as the Trace Event
 * JSON chrome://tracing and Perfetto load directly — complete "X"
 * events with microsecond timestamps, grouped into process/thread
 * tracks via pid/tid and named through "M" metadata events.
 *
 * Two producers share this writer: the executor path (one process,
 * a step track plus one track per pool worker, from a TraceBuffer)
 * and the serving path (ServingEngine::exportChromeTrace — worker
 * tracks plus one lane per request, so a coalesced group renders as
 * N request lanes converging into one shared run span).
 *
 * All timestamps entering the writer are absolute steady-clock ns
 * (traceNowNs); the writer normalizes them against the earliest event
 * so traces start near t=0 regardless of host uptime.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace pe {

class Executor;

/** Accumulates Trace Event JSON; save() writes the final object. */
class ChromeTraceJson
{
  public:
    /**
     * Append one complete ("X") event. @p args are extra key/value
     * pairs shown in the UI's detail pane; values are emitted as JSON
     * strings. Zero-duration spans are widened to 1 ns so they stay
     * clickable in the viewer.
     */
    void event(const std::string &name, int pid, int64_t tid,
               int64_t startNs, int64_t durNs,
               const std::vector<std::pair<std::string, std::string>>
                   &args = {});

    /** Name a (pid, tid) track via "M" thread_name metadata. */
    void threadName(int pid, int64_t tid, const std::string &name);

    /** Name a pid via "M" process_name metadata. */
    void processName(int pid, const std::string &name);

    /** The accumulated {"traceEvents":[...]} object. */
    std::string json() const;

    /** Write json() to @p path; false on I/O failure. */
    bool save(const std::string &path) const;

    size_t events() const { return events_.size(); }

  private:
    struct Ev {
        std::string name;
        int pid;
        int64_t tid;
        int64_t startNs; ///< absolute; normalized at json() time
        int64_t durNs;   ///< <0 marks a metadata event
        std::string argsJson;
    };
    std::vector<Ev> events_;
    std::vector<std::string> meta_; ///< pre-rendered "M" events
};

/**
 * Export @p trace (recorded by contexts of @p ex) to @p path: step
 * spans on a "steps" track, shard spans on one track per pool worker
 * (with shard range + CPU ns in args). Returns false on I/O failure.
 */
bool exportChromeTrace(const std::string &path, const Executor &ex,
                       const TraceBuffer &trace);

} // namespace pe
