#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "ir/graph.h"
#include "runtime/executor.h"

namespace pe {

namespace {

/** "12.3 KB" / "4.1 MB" — table cells stay narrow. */
std::string
fmtBytes(int64_t b)
{
    char buf[32];
    if (b >= 1 << 20)
        std::snprintf(buf, sizeof(buf), "%.1f MB",
                      static_cast<double>(b) / (1 << 20));
    else if (b >= 1 << 10)
        std::snprintf(buf, sizeof(buf), "%.1f KB",
                      static_cast<double>(b) / (1 << 10));
    else
        std::snprintf(buf, sizeof(buf), "%lld B",
                      static_cast<long long>(b));
    return buf;
}

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

} // namespace

ProfileReport
profileTrace(const Executor &ex, const TraceBuffer &trace)
{
    ProfileReport r;
    r.droppedSpans = trace.dropped();
    r.flopsPerStep = ex.graph().totalFlops();
    r.kernelFallbacks = ex.fallbackCount();
    // Aggregate the fallback labels the same way CompileReport does
    // ("op/variant xN" in first-appearance order).
    {
        std::vector<std::pair<std::string, int>> counts;
        for (const std::string &label : ex.fallbackKernels()) {
            bool found = false;
            for (auto &[l, c] : counts) {
                if (l == label) {
                    ++c;
                    found = true;
                    break;
                }
            }
            if (!found)
                counts.emplace_back(label, 1);
        }
        for (size_t i = 0; i < counts.size(); ++i) {
            if (i)
                r.fallbackBreakdown += ", ";
            r.fallbackBreakdown += counts[i].first + " x" +
                                   std::to_string(counts[i].second);
        }
    }

    // Per-step rows keyed by stepIndex; the trace may not cover every
    // compiled step (ring overflow), so rows exist only for recorded
    // indices but stay in execution order.
    std::vector<TraceSpan> spans = trace.snapshot();
    std::vector<ProfileStepRow> byStep(
        static_cast<size_t>(ex.numSteps()));
    std::unordered_set<int64_t> runIds;
    for (const TraceSpan &s : spans) {
        if (s.kind != SpanKind::Step)
            continue;
        if (s.stepIndex < 0 || s.stepIndex >= ex.numSteps())
            continue;
        ProfileStepRow &row =
            byStep[static_cast<size_t>(s.stepIndex)];
        if (row.calls == 0) {
            row.stepIndex = s.stepIndex;
            row.node = s.node;
            row.op = s.op;
            row.variant = s.variant;
            row.shards = s.shards;
            row.flops = nodeFlops(ex.graph(), ex.graph().node(s.node));
            row.outBytes = ex.memoryPlan().values[s.node].bytes;
            for (const WorkspacePlacement &w :
                 ex.memoryPlan().workspaces) {
                if (w.node == s.node)
                    row.workspaceBytes =
                        static_cast<int64_t>(w.shards) *
                            w.bytesPerShard +
                        w.sharedBytes;
            }
        }
        ++row.calls;
        row.totalNs += s.durNs;
        runIds.insert(s.runId);
        ++r.stepSpans;
        r.totalNs += s.durNs;
    }
    r.runs = static_cast<int64_t>(runIds.size());

    double totalFlops = 0;
    for (ProfileStepRow &row : byStep) {
        if (row.calls == 0)
            continue;
        row.timeShare = r.totalNs > 0
                            ? static_cast<double>(row.totalNs) /
                                  static_cast<double>(r.totalNs)
                            : 0;
        row.gflops = row.totalNs > 0
                         ? row.flops *
                               static_cast<double>(row.calls) /
                               static_cast<double>(row.totalNs)
                         : 0;
        totalFlops += row.flops * static_cast<double>(row.calls);
        r.steps.push_back(row);
    }
    r.gflops = r.totalNs > 0
                   ? totalFlops / static_cast<double>(r.totalNs)
                   : 0;

    // Per-op fold, sorted by time.
    for (const ProfileStepRow &row : r.steps) {
        ProfileOpRow *op = nullptr;
        for (ProfileOpRow &o : r.ops) {
            if (o.op == row.op)
                op = &o;
        }
        if (!op) {
            r.ops.push_back({});
            op = &r.ops.back();
            op->op = row.op;
        }
        ++op->steps;
        op->calls += row.calls;
        op->totalNs += row.totalNs;
    }
    for (ProfileOpRow &o : r.ops) {
        o.timeShare = r.totalNs > 0
                          ? static_cast<double>(o.totalNs) /
                                static_cast<double>(r.totalNs)
                          : 0;
        double f = 0;
        for (const ProfileStepRow &row : r.steps) {
            if (row.op == o.op)
                f += row.flops * static_cast<double>(row.calls);
        }
        o.gflops = o.totalNs > 0
                       ? f / static_cast<double>(o.totalNs)
                       : 0;
    }
    std::sort(r.ops.begin(), r.ops.end(),
              [](const ProfileOpRow &a, const ProfileOpRow &b) {
                  return a.totalNs > b.totalNs;
              });
    return r;
}

std::string
ProfileReport::table() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "profile: %lld runs, %lld step spans, %.3f ms "
                  "span time, %.2f GFLOP/s achieved%s\n",
                  static_cast<long long>(runs),
                  static_cast<long long>(stepSpans), totalNs / 1e6,
                  gflops,
                  droppedSpans > 0 ? " (RING OVERFLOWED)" : "");
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "%5s  %-16s %-14s %6s %7s %10s %7s %9s %10s %10s\n",
                  "step", "op", "variant", "shards", "calls",
                  "time ms", "share", "GFLOP/s", "out", "scratch");
    out += buf;
    for (const ProfileStepRow &s : steps) {
        std::snprintf(buf, sizeof(buf),
                      "%5d  %-16s %-14s %6d %7lld %10.3f %6.1f%% "
                      "%9.2f %10s %10s\n",
                      s.stepIndex, s.op.c_str(),
                      s.variant.empty() ? "default"
                                        : s.variant.c_str(),
                      s.shards, static_cast<long long>(s.calls),
                      s.totalNs / 1e6, 100.0 * s.timeShare, s.gflops,
                      fmtBytes(s.outBytes).c_str(),
                      fmtBytes(s.workspaceBytes).c_str());
        out += buf;
    }
    out += "\nby op type:\n";
    std::snprintf(buf, sizeof(buf), "%-16s %6s %7s %10s %7s %9s\n",
                  "op", "steps", "calls", "time ms", "share",
                  "GFLOP/s");
    out += buf;
    for (const ProfileOpRow &o : ops) {
        std::snprintf(buf, sizeof(buf),
                      "%-16s %6d %7lld %10.3f %6.1f%% %9.2f\n",
                      o.op.c_str(), o.steps,
                      static_cast<long long>(o.calls), o.totalNs / 1e6,
                      100.0 * o.timeShare, o.gflops);
        out += buf;
    }
    return out;
}

std::string
ProfileReport::summary(int topN) const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "profile: %lld runs, %zu steps, %.2f ms span time, "
                  "%.2f GFLOP/s\n",
                  static_cast<long long>(runs), steps.size(),
                  totalNs / 1e6, gflops);
    std::string out = buf;
    out += "top ops by time:";
    int shown = 0;
    for (const ProfileOpRow &o : ops) {
        if (shown++ >= topN)
            break;
        std::snprintf(buf, sizeof(buf), " %s %.1f%%", o.op.c_str(),
                      100.0 * o.timeShare);
        out += buf;
    }
    out += "\nkernel fallbacks: ";
    if (kernelFallbacks == 0)
        out += "none";
    else
        out += std::to_string(kernelFallbacks) + " -> " +
               fallbackBreakdown;
    out += "\n";
    return out;
}

std::string
ProfileReport::json() const
{
    char buf[256];
    std::string out = "{";
    std::snprintf(buf, sizeof(buf),
                  "\"runs\":%lld,\"step_spans\":%lld,"
                  "\"dropped_spans\":%lld,\"total_ns\":%lld,"
                  "\"flops_per_step\":%.17g,\"gflops\":%.17g,"
                  "\"kernel_fallbacks\":%d,",
                  static_cast<long long>(runs),
                  static_cast<long long>(stepSpans),
                  static_cast<long long>(droppedSpans),
                  static_cast<long long>(totalNs), flopsPerStep,
                  gflops, kernelFallbacks);
    out += buf;
    out += "\"fallback_breakdown\":\"";
    jsonEscape(out, fallbackBreakdown);
    out += "\",\"steps\":[";
    for (size_t i = 0; i < steps.size(); ++i) {
        const ProfileStepRow &s = steps[i];
        if (i)
            out += ",";
        out += "{\"step\":" + std::to_string(s.stepIndex) +
               ",\"node\":" + std::to_string(s.node) + ",\"op\":\"";
        jsonEscape(out, s.op);
        out += "\",\"variant\":\"";
        jsonEscape(out, s.variant);
        std::snprintf(buf, sizeof(buf),
                      "\",\"shards\":%d,\"calls\":%lld,"
                      "\"total_ns\":%lld,\"time_share\":%.17g,"
                      "\"flops\":%.17g,\"gflops\":%.17g,"
                      "\"out_bytes\":%lld,\"workspace_bytes\":%lld}",
                      s.shards, static_cast<long long>(s.calls),
                      static_cast<long long>(s.totalNs), s.timeShare,
                      s.flops, s.gflops,
                      static_cast<long long>(s.outBytes),
                      static_cast<long long>(s.workspaceBytes));
        out += buf;
    }
    out += "],\"ops\":[";
    for (size_t i = 0; i < ops.size(); ++i) {
        const ProfileOpRow &o = ops[i];
        if (i)
            out += ",";
        out += "{\"op\":\"";
        jsonEscape(out, o.op);
        std::snprintf(buf, sizeof(buf),
                      "\",\"steps\":%d,\"calls\":%lld,"
                      "\"total_ns\":%lld,\"time_share\":%.17g,"
                      "\"gflops\":%.17g}",
                      o.steps, static_cast<long long>(o.calls),
                      static_cast<long long>(o.totalNs), o.timeShare,
                      o.gflops);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace pe
