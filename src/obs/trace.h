/**
 * @file
 * Execution tracing primitives: the fixed-capacity span ring every
 * armed ExecContext records into, and the span record itself.
 *
 * Design constraints (the ISSUE-8 contract):
 *  - zero steady-state allocation: the ring is sized once at arm time
 *    and recording is a fetch_add + struct copy, so a traced serving
 *    session allocates nothing per request;
 *  - the DISARMED path costs the executor hot loop exactly one
 *    pointer test (asserted by bench_kernels' BM_TraceOverhead row);
 *  - concurrent recording is safe: shard spans are written from pool
 *    worker threads during one dispatch, each into its own reserved
 *    slot, and the dispatch barrier orders all of them before the
 *    step span and before any reader.
 *
 * Timestamps are ABSOLUTE steady_clock nanoseconds, not run-relative
 * offsets, so spans from different contexts (N serving sessions, the
 * engine's request-lifecycle records) land on one shared timeline and
 * a Chrome-trace export can interleave them without clock fusion.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pe {

/** What a TraceSpan covers. */
enum class SpanKind : uint8_t {
    Step = 0, ///< one kernel step (all shards, wall time)
    Shard = 1 ///< one shard of a sharded step (worker-local)
};

/**
 * One recorded execution span. Plain data, copied whole into the
 * ring; the two string fields point at storage that outlives the
 * trace (op mnemonics are static, variant labels live in the
 * executor's variant table), so spans carry no ownership.
 */
struct TraceSpan {
    SpanKind kind = SpanKind::Step;
    /** Pool worker that ran it (0 = the dispatching thread). */
    uint16_t worker = 0;
    int32_t node = -1;      ///< graph node id
    int32_t stepIndex = -1; ///< kernel-step index within the program
    int32_t shard = -1;     ///< shard index; -1 on Step spans
    int32_t shards = 1;     ///< launch width of the step
    int64_t runId = 0;      ///< ExecContext step counter of the run
    int64_t startNs = 0;    ///< absolute steady_clock ns
    int64_t durNs = 0;      ///< wall duration
    /** Thread CPU time consumed (Shard spans; -1 = unsupported). */
    int64_t cpuNs = -1;
    int64_t begin = 0; ///< shard range over the partition domain
    int64_t end = 0;
    const char *op = "";      ///< op mnemonic (static storage)
    const char *variant = ""; ///< kernel variant incl. "@avx2"/"@neon"
};

/** Absolute steady_clock nanoseconds (the one trace timebase). */
int64_t traceNowNs();

/** Calling thread's CPU time in ns; -1 where the clock is missing. */
int64_t traceThreadCpuNs();

/**
 * Fixed-capacity span ring. All storage is allocated at construction;
 * record() reserves a slot with one relaxed fetch_add and copies the
 * span in, so concurrent shard recorders never contend on a lock and
 * never allocate. Once full, new spans overwrite the oldest —
 * recorded() keeps counting so dropped() makes the loss visible.
 *
 * Synchronization contract: concurrent record() calls are safe
 * (distinct slots); readers (size/snapshot) must be ordered after the
 * writers by an external barrier — the executor's per-step dispatch
 * barrier and the serving engine's completion signal both provide it.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity)
    {
    }

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    void
    record(const TraceSpan &s)
    {
        int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
        slots_[static_cast<size_t>(i) % slots_.size()] = s;
    }

    size_t capacity() const { return slots_.size(); }

    /** Spans currently held: min(recorded, capacity). */
    size_t
    size() const
    {
        int64_t n = next_.load(std::memory_order_relaxed);
        return static_cast<size_t>(n) < slots_.size()
                   ? static_cast<size_t>(n)
                   : slots_.size();
    }

    /** Spans ever recorded (keeps counting past capacity). */
    int64_t
    recorded() const
    {
        return next_.load(std::memory_order_relaxed);
    }

    /** Spans lost to ring overwrite: recorded() - size(). */
    int64_t
    dropped() const
    {
        return recorded() - static_cast<int64_t>(size());
    }

    /** Forget everything; capacity is untouched. Not thread-safe. */
    void clear() { next_.store(0, std::memory_order_relaxed); }

    /**
     * The held spans, OLDEST FIRST (the ring unrolled). Allocates the
     * result vector — analysis-time only, never on the record path.
     */
    std::vector<TraceSpan> snapshot() const;

  private:
    std::vector<TraceSpan> slots_;
    std::atomic<int64_t> next_{0};
};

} // namespace pe
