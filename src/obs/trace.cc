#include "obs/trace.h"

#include <chrono>
#include <ctime>

namespace pe {

int64_t
traceNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

int64_t
traceThreadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return -1;
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
    return -1;
#endif
}

std::vector<TraceSpan>
TraceBuffer::snapshot() const
{
    int64_t n = next_.load(std::memory_order_relaxed);
    size_t cap = slots_.size();
    std::vector<TraceSpan> out;
    if (n <= static_cast<int64_t>(cap)) {
        out.assign(slots_.begin(), slots_.begin() + n);
        return out;
    }
    // Full ring: the oldest surviving span sits at the next write
    // position.
    out.reserve(cap);
    size_t at = static_cast<size_t>(n) % cap;
    for (size_t i = 0; i < cap; ++i)
        out.push_back(slots_[(at + i) % cap]);
    return out;
}

} // namespace pe
