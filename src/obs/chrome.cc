#include "obs/chrome.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "runtime/executor.h"

namespace pe {

namespace {

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

} // namespace

void
ChromeTraceJson::event(
    const std::string &name, int pid, int64_t tid, int64_t startNs,
    int64_t durNs,
    const std::vector<std::pair<std::string, std::string>> &args)
{
    Ev e;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.startNs = startNs;
    e.durNs = std::max<int64_t>(1, durNs);
    if (!args.empty()) {
        e.argsJson = "{";
        for (size_t i = 0; i < args.size(); ++i) {
            if (i)
                e.argsJson += ",";
            e.argsJson += "\"";
            jsonEscape(e.argsJson, args[i].first);
            e.argsJson += "\":\"";
            jsonEscape(e.argsJson, args[i].second);
            e.argsJson += "\"";
        }
        e.argsJson += "}";
    }
    events_.push_back(std::move(e));
}

void
ChromeTraceJson::threadName(int pid, int64_t tid,
                            const std::string &name)
{
    std::string m = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                    std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"args\":{\"name\":\"";
    jsonEscape(m, name);
    m += "\"}}";
    meta_.push_back(std::move(m));
}

void
ChromeTraceJson::processName(int pid, const std::string &name)
{
    std::string m =
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
        std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"";
    jsonEscape(m, name);
    m += "\"}}";
    meta_.push_back(std::move(m));
}

std::string
ChromeTraceJson::json() const
{
    // Normalize so the trace starts near t=0 (absolute steady-clock
    // ns would otherwise put events hours into the viewer timeline).
    int64_t base = 0;
    bool first = true;
    for (const Ev &e : events_) {
        if (first || e.startNs < base) {
            base = e.startNs;
            first = false;
        }
    }
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool any = false;
    for (const std::string &m : meta_) {
        if (any)
            out += ",";
        out += m;
        any = true;
    }
    char buf[128];
    for (const Ev &e : events_) {
        if (any)
            out += ",";
        any = true;
        out += "{\"name\":\"";
        jsonEscape(out, e.name);
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%lld,"
                      "\"ts\":%.3f,\"dur\":%.3f",
                      e.pid, static_cast<long long>(e.tid),
                      static_cast<double>(e.startNs - base) / 1e3,
                      static_cast<double>(e.durNs) / 1e3);
        out += buf;
        if (!e.argsJson.empty()) {
            out += ",\"args\":";
            out += e.argsJson;
        }
        out += "}";
    }
    out += "]}";
    return out;
}

bool
ChromeTraceJson::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::string s = json();
    f.write(s.data(), static_cast<std::streamsize>(s.size()));
    return static_cast<bool>(f);
}

bool
exportChromeTrace(const std::string &path, const Executor &ex,
                  const TraceBuffer &trace)
{
    ChromeTraceJson ct;
    const int pid = 1;
    ct.processName(pid, "executor");
    ct.threadName(pid, 0, "steps");
    for (int w = 0; w < ex.numThreads(); ++w)
        ct.threadName(pid, 100 + w, "worker " + std::to_string(w));

    char buf[64];
    for (const TraceSpan &s : trace.snapshot()) {
        std::string name = s.op;
        if (s.variant && s.variant[0]) {
            name += "/";
            name += s.variant;
        }
        std::vector<std::pair<std::string, std::string>> args;
        args.emplace_back("node", std::to_string(s.node));
        args.emplace_back("run", std::to_string(s.runId));
        if (s.kind == SpanKind::Step) {
            args.emplace_back("shards", std::to_string(s.shards));
            ct.event(name, pid, 0, s.startNs, s.durNs, args);
        } else {
            std::snprintf(buf, sizeof(buf), "[%lld, %lld)",
                          static_cast<long long>(s.begin),
                          static_cast<long long>(s.end));
            args.emplace_back("range", buf);
            if (s.cpuNs >= 0)
                args.emplace_back("cpu_ns", std::to_string(s.cpuNs));
            ct.event(name + " #" + std::to_string(s.shard), pid,
                     100 + s.worker, s.startNs, s.durNs, args);
        }
    }
    return ct.save(path);
}

} // namespace pe
