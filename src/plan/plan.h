/**
 * @file
 * Binary plan serialization: compile once, deploy anywhere.
 *
 * The paper's premise is that ALL compile-time work — autodiff,
 * sparse-BP pruning, quantization, backend switching, memory planning
 * — happens once, ahead of time, and the target device only executes
 * a frozen plan. This module makes that deployable: the full compiled
 * product of an inference program (graph topology + attrs, execution
 * order, kernel-variant choices, the MemoryPlan, launch geometry,
 * quant params, the packed const pool, and the frozen parameters)
 * round-trips through a versioned binary format, so a server fleet
 * loads bucket plans at startup in milliseconds and the same blob is
 * what an MCU target would flash.
 *
 * Format (little-endian only; the header carries an endian tag and
 * big-endian readers are rejected):
 *
 *   [0..7]    magic 0x89 'P' 'E' 'P' 'L' 'A' 'N' 0x0A
 *   [8..11]   u32 format version (kPlanFormatVersion)
 *   [12..15]  u32 endian tag 0x01020304
 *   [16..23]  u64 total file bytes
 *   [24..27]  u32 section count
 *   then per section: u32 tag, u64 offset, u64 bytes, u64 checksum
 *   then the section payloads.
 *
 * Sections: META (provenance tag, precision, node count), RPRT
 * (compile-side report fields), GRPH (nodes + attrs + shapes +
 * dtypes), ORDR (execution order), VRNT (kernel variants by name),
 * LNCH (thread count + per-step shard counts), MPLN (value
 * placements, workspace placements, totals, memory timeline), CNST
 * (pre-packed const pool — i8/f16 consts in their deployed byte
 * layout, so load repacks nothing), PRMS (frozen parameter tensors).
 *
 * Every section is covered by an FNV-1a-64 checksum, so any
 * single-byte corruption is rejected with a typed error before any
 * payload is interpreted. Kernels are bound by REGISTRY NAME (op
 * mnemonic + variant string), never by enum value or pointer, which
 * is what makes a plan portable across processes and builds.
 *
 * The loader's contract, asserted via pipelineCounters(): loading a
 * plan performs ZERO planner / scheduler / QuantizePass invocations.
 * Execution of a loaded plan is bit-identical to the freshly-compiled
 * program at any thread count (the launch geometry is part of the
 * plan, and the executor's bind tripwire cross-checks it against this
 * machine's registry).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "ir/graph.h"
#include "runtime/executor.h"

namespace pe {

/** Format version this build writes (and the only one it reads).
 *  v2 (the KV-cache release): MPLN grew the cache-region extent
 *  (MemoryPlan::cacheBytes) after peakLiveBytes, and the storage-tag
 *  range admits Storage::Cache (tag 5). v1 tags 0-4 are unchanged, so
 *  the bump exists to make cross-build loads fail TYPED
 *  (PlanVersionError) instead of misreading the grown section. */
inline constexpr uint32_t kPlanFormatVersion = 2;

// ---- typed load errors ----------------------------------------------
// Each corruption class gets its own type so deployment code can
// distinguish "wrong file" from "damaged file" from "plan from a
// different build"; all derive from PlanError.

/** Base class of every plan (de)serialization failure. */
class PlanError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The file ends before the declared header/sections do. */
class PlanTruncatedError : public PlanError
{
  public:
    using PlanError::PlanError;
};

/** The leading bytes are not the plan magic (wrong file entirely). */
class PlanBadMagicError : public PlanError
{
  public:
    using PlanError::PlanError;
};

/** The format version (or byte order) is not this build's. */
class PlanVersionError : public PlanError
{
  public:
    using PlanError::PlanError;
};

/** A section's checksum does not match its bytes (bit rot, partial
 *  write, tampering). */
class PlanChecksumError : public PlanError
{
  public:
    using PlanError::PlanError;
};

/** The plan names an op or kernel this build's registry lacks (plan
 *  from a newer build, or a stripped kernel library). */
class PlanUnknownKernelError : public PlanError
{
  public:
    using PlanError::PlanError;
};

/** Structurally invalid payload (bad enum, dangling id, wrong count)
 *  that slipped past the checksums — i.e. a writer bug, not bit rot. */
class PlanFormatError : public PlanError
{
  public:
    using PlanError::PlanError;
};

// ---- the deserialized artifact --------------------------------------

/** Everything a plan file holds, decoded but not yet bound. */
struct PlanData {
    std::string tag;      ///< free-form provenance (plan_tool recipe)
    Precision precision = Precision::F32;
    int lossId = -1;
    Graph graph;
    ProgramArtifact artifact;
    CompileReport report; ///< compile-side fields; exec-side fields
                          ///< are re-derived at bind (identically —
                          ///< both come from the serialized plan)
    /** Frozen parameter tensors, in graph paramIds() order. */
    std::vector<std::pair<std::string, Tensor>> params;
};

// ---- serialize / deserialize ----------------------------------------

/**
 * Serialize one compiled program to the binary format. Deterministic:
 * the same compiled product yields byte-identical output (no
 * timestamps, pointers, or hash-order iteration), which is what the
 * CI round-trip job's `cmp` determinism check relies on.
 */
std::string serializePlan(const Graph &g, const ProgramArtifact &art,
                          const CompileReport &report,
                          const ParamStore &store,
                          const std::string &tag = "",
                          int loss_id = -1);

/** Decode a plan blob. Throws the typed PlanError subclasses. */
PlanData deserializePlan(const std::string &bytes);

/** Write @p bytes to @p path (binary, atomic-ish: whole buffer). */
void writePlanFile(const std::string &path, const std::string &bytes);

/** Read a whole file; throws PlanError when it cannot be opened. */
std::string readPlanFile(const std::string &path);

/**
 * Load a plan into a runnable program. Fills @p store (created when
 * null) with the plan's frozen parameters, reconstructs the graph and
 * binds an Executor from the artifact — asserting via
 * pipelineCounters() that no planner/scheduler/QuantizePass stage ran
 * (std::logic_error if the contract is ever broken). The returned
 * program's execution is bit-identical to the program that was saved.
 */
std::unique_ptr<InferenceProgram> loadPlan(
    const std::string &path,
    std::shared_ptr<ParamStore> store = nullptr);

/** loadPlan() from an in-memory blob (tests, network transport). */
std::unique_ptr<InferenceProgram> loadPlanFromBytes(
    const std::string &bytes,
    std::shared_ptr<ParamStore> store = nullptr);

// ---- introspection / tooling ----------------------------------------

/** One section-table entry, for `plan_tool inspect` and tests. */
struct PlanSectionInfo {
    std::string tag;       ///< fourcc, e.g. "GRPH"
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t checksum = 0; ///< as recorded in the table
    bool checksumOk = false;
};

/** Parse the header + section table (verifying checksums) without
 *  decoding payloads. Throws the same typed errors as deserialize. */
std::vector<PlanSectionInfo> planSections(const std::string &bytes);

/** The section checksum function (FNV-1a 64). */
uint64_t planChecksum(const void *data, size_t n);

/**
 * Recompute and patch every section checksum in @p blob. This exists
 * for tests and tooling that deliberately tamper with payload bytes
 * (e.g. the unknown-kernel corruption test) and must get PAST the
 * checksum gate; production code never needs it.
 */
void resealPlan(std::string &blob);

} // namespace pe
