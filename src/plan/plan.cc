#include "plan/plan.h"

#include <cstring>
#include <fstream>

#include "ir/infer.h"
#include "ir/op.h"
#include "kernels/kernel.h"
#include "runtime/planner.h"

namespace pe {

namespace {

constexpr uint8_t kMagic[8] = {0x89, 'P', 'E', 'P', 'L', 'A', 'N',
                               0x0A};
constexpr uint32_t kEndianTag = 0x01020304;
constexpr size_t kHeaderBytes = 28;      ///< magic..sectionCount
constexpr size_t kTableEntryBytes = 28;  ///< tag+offset+bytes+checksum
constexpr uint32_t kMaxSections = 64;

constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

constexpr uint32_t kSecMeta = fourcc('M', 'E', 'T', 'A');
constexpr uint32_t kSecReport = fourcc('R', 'P', 'R', 'T');
constexpr uint32_t kSecGraph = fourcc('G', 'R', 'P', 'H');
constexpr uint32_t kSecOrder = fourcc('O', 'R', 'D', 'R');
constexpr uint32_t kSecVariants = fourcc('V', 'R', 'N', 'T');
constexpr uint32_t kSecLaunch = fourcc('L', 'N', 'C', 'H');
constexpr uint32_t kSecMemPlan = fourcc('M', 'P', 'L', 'N');
constexpr uint32_t kSecConsts = fourcc('C', 'N', 'S', 'T');
constexpr uint32_t kSecParams = fourcc('P', 'R', 'M', 'S');

/** Every v1 section, in the canonical (deterministic) file order. */
constexpr uint32_t kSectionOrder[] = {
    kSecMeta,    kSecReport, kSecGraph,  kSecOrder, kSecVariants,
    kSecLaunch,  kSecMemPlan, kSecConsts, kSecParams};
constexpr size_t kNumSections =
    sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);

std::string
tagName(uint32_t tag)
{
    std::string s(4, '?');
    s[0] = static_cast<char>(tag & 0xff);
    s[1] = static_cast<char>((tag >> 8) & 0xff);
    s[2] = static_cast<char>((tag >> 16) & 0xff);
    s[3] = static_cast<char>((tag >> 24) & 0xff);
    return s;
}

// ---- primitive writers (host must be little-endian; the header's
// endian tag rejects cross-endian loads) ------------------------------

class ByteWriter
{
  public:
    void
    raw(const void *p, size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }
    void u8(uint8_t v) { raw(&v, 1); }
    void u32(uint32_t v) { raw(&v, 4); }
    void u64(uint64_t v) { raw(&v, 8); }
    void i32(int32_t v) { raw(&v, 4); }
    void i64(int64_t v) { raw(&v, 8); }
    void f64(double v) { raw(&v, 8); }
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Bounds-checked cursor over one (already checksum-verified)
 *  section payload. An overrun here means a writer/format bug, not
 *  bit rot, so it maps to PlanFormatError. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *p, size_t n, const char *what)
        : p_(p), n_(n), what_(what)
    {
    }

    void
    need(size_t k) const
    {
        if (pos_ + k > n_)
            throw PlanFormatError(std::string("plan: ") + what_ +
                                  " section data overrun");
    }
    template <typename T>
    T
    get()
    {
        need(sizeof(T));
        T v;
        std::memcpy(&v, p_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
    std::string
    str()
    {
        uint32_t len = get<uint32_t>();
        need(len);
        std::string s(reinterpret_cast<const char *>(p_ + pos_), len);
        pos_ += len;
        return s;
    }
    const uint8_t *
    bytes(size_t n)
    {
        need(n);
        const uint8_t *at = p_ + pos_;
        pos_ += n;
        return at;
    }
    void
    finish() const
    {
        if (pos_ != n_)
            throw PlanFormatError(std::string("plan: ") + what_ +
                                  " section has trailing bytes");
    }

  private:
    const uint8_t *p_;
    size_t n_;
    size_t pos_ = 0;
    const char *what_;
};

// ---- attr (de)coding -------------------------------------------------

enum AttrTag : uint8_t {
    kAttrInt = 0,
    kAttrFloat = 1,
    kAttrInts = 2,
    kAttrString = 3,
};

void
writeAttr(ByteWriter &w, const AttrValue &v)
{
    if (std::holds_alternative<int64_t>(v)) {
        w.u8(kAttrInt);
        w.i64(std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
        w.u8(kAttrFloat);
        w.f64(std::get<double>(v));
    } else if (std::holds_alternative<std::vector<int64_t>>(v)) {
        w.u8(kAttrInts);
        const auto &xs = std::get<std::vector<int64_t>>(v);
        w.u32(static_cast<uint32_t>(xs.size()));
        for (int64_t x : xs)
            w.i64(x);
    } else {
        w.u8(kAttrString);
        w.str(std::get<std::string>(v));
    }
}

AttrValue
readAttr(ByteReader &r)
{
    uint8_t tag = r.get<uint8_t>();
    switch (tag) {
      case kAttrInt:
        return r.get<int64_t>();
      case kAttrFloat:
        return r.get<double>();
      case kAttrInts: {
        uint32_t count = r.get<uint32_t>();
        // Bounds BEFORE allocation: a crafted count must become a
        // typed format error, not a 32 GB bad_alloc.
        r.need(static_cast<size_t>(count) * 8);
        std::vector<int64_t> xs(count);
        for (uint32_t i = 0; i < count; ++i)
            xs[i] = r.get<int64_t>();
        return xs;
      }
      case kAttrString:
        return r.str();
    }
    throw PlanFormatError("plan: bad attr tag " + std::to_string(tag));
}

// ---- section payload builders ----------------------------------------

std::string
buildMeta(const std::string &tag, Precision precision, int loss_id,
          int num_nodes)
{
    ByteWriter w;
    w.str(tag);
    w.u8(static_cast<uint8_t>(precision));
    w.i32(loss_id);
    w.u32(static_cast<uint32_t>(num_nodes));
    return w.take();
}

std::string
buildReport(const CompileReport &r)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(r.precision));
    w.i32(r.forwardNodes);
    w.i32(r.backwardNodes);
    w.i32(r.trainableTensors);
    w.i32(r.prunedNodes);
    w.i32(r.fusions);
    w.i32(r.folded);
    w.f64(r.flopsPerStep);
    w.i64(r.arenaBytesNoReorder);
    w.i32(r.backend.nodesRemoved);
    w.i32(r.backend.nodesFused);
    w.i32(r.backend.nodesFolded);
    w.i32(r.backend.winogradBound);
    w.i32(r.backend.blockedBound);
    w.i32(r.backend.int8Bound);
    w.i32(r.quant.quantizedOps);
    w.i32(r.quant.quantizeNodes);
    w.i32(r.quant.dequantizeNodes);
    w.i32(r.quant.requantFolded);
    w.i32(r.quant.prequantizedWeights);
    return w.take();
}

std::string
buildGraph(const Graph &g)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(g.numNodes()));
    for (int id = 0; id < g.numNodes(); ++id) {
        const Node &n = g.node(id);
        w.str(opName(n.op));
        w.str(n.name);
        w.u8(n.trainable ? 1 : 0);
        w.u8(static_cast<uint8_t>(n.dtype));
        w.u32(static_cast<uint32_t>(n.inputs.size()));
        for (int in : n.inputs)
            w.i32(in);
        w.u32(static_cast<uint32_t>(n.shape.size()));
        for (int64_t d : n.shape)
            w.i64(d);
        w.u32(static_cast<uint32_t>(n.attrs.items().size()));
        for (const auto &[k, v] : n.attrs.items()) {
            w.str(k);
            writeAttr(w, v);
        }
    }
    w.u32(static_cast<uint32_t>(g.outputs().size()));
    for (int o : g.outputs())
        w.i32(o);
    return w.take();
}

std::string
buildOrder(const std::vector<int> &order)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(order.size()));
    for (int id : order)
        w.i32(id);
    return w.take();
}

std::string
buildVariants(const std::vector<std::string> &variants)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(variants.size()));
    for (const std::string &v : variants)
        w.str(v);
    return w.take();
}

std::string
buildLaunch(const ProgramArtifact &art)
{
    ByteWriter w;
    w.i32(art.numThreads);
    w.i32(art.shardedSteps);
    w.i32(art.serializedByWorkspace);
    w.u32(static_cast<uint32_t>(art.shardsPerStep.size()));
    for (int s : art.shardsPerStep)
        w.i32(s);
    return w.take();
}

std::string
buildMemPlan(const MemoryPlan &p)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(p.values.size()));
    for (const ValuePlacement &v : p.values) {
        w.u8(static_cast<uint8_t>(v.storage));
        w.u8(static_cast<uint8_t>(v.dtype));
        w.i64(v.offset);
        w.i64(v.bytes);
        w.i32(v.defPos);
        w.i32(v.lastUsePos);
    }
    w.u32(static_cast<uint32_t>(p.workspaces.size()));
    for (const WorkspacePlacement &ws : p.workspaces) {
        w.i32(ws.node);
        w.i32(ws.stepPos);
        w.i32(ws.shards);
        w.i64(ws.bytesPerShard);
        w.i64(ws.shardStride);
        w.i64(ws.offset);
        w.i64(ws.sharedBytes);
        w.i64(ws.sharedOffset);
    }
    w.i64(p.arenaBytes);
    w.i64(p.workspaceBytes);
    w.i64(p.paramBytes);
    w.i64(p.constBytes);
    w.i64(p.inputBytes);
    for (int64_t b : p.arenaValueBytesByDtype)
        w.i64(b);
    for (int64_t b : p.constBytesByDtype)
        w.i64(b);
    w.u32(static_cast<uint32_t>(p.liveBytesAtStep.size()));
    for (int64_t b : p.liveBytesAtStep)
        w.i64(b);
    w.i64(p.peakLiveBytes);
    w.i64(p.cacheBytes); // format v2: per-context cache region
    return w.take();
}

std::string
buildConsts(const Graph &g, const std::vector<Tensor> &pool)
{
    ByteWriter w;
    uint32_t count = 0;
    for (int id = 0; id < g.numNodes(); ++id) {
        if (g.node(id).op == OpKind::Const)
            ++count;
    }
    w.u32(count);
    for (int id = 0; id < g.numNodes(); ++id) {
        const Node &n = g.node(id);
        if (n.op != OpKind::Const)
            continue;
        int64_t nbytes = numel(n.shape) * dtypeSize(n.dtype);
        w.i32(id);
        w.u64(static_cast<uint64_t>(nbytes));
        // The pool tensor is the executor's packed buffer: for f32 a
        // value tensor of the node's shape, otherwise raw i8/f16
        // bytes in word-padded storage — either way the first nbytes
        // are exactly the deployed layout.
        w.raw(pool[id].data(), static_cast<size_t>(nbytes));
    }
    return w.take();
}

std::string
buildParams(const Graph &g, const ParamStore &store)
{
    ByteWriter w;
    std::vector<int> ids = g.paramIds();
    w.u32(static_cast<uint32_t>(ids.size()));
    for (int id : ids) {
        const Node &n = g.node(id);
        const Tensor &t = store.get(n.name);
        w.str(n.name);
        w.u32(static_cast<uint32_t>(t.shape().size()));
        for (int64_t d : t.shape())
            w.i64(d);
        w.raw(t.data(), sizeof(float) * static_cast<size_t>(t.size()));
    }
    return w.take();
}

// ---- header / section-table plumbing ---------------------------------

struct RawSection {
    uint32_t tag = 0;
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t checksum = 0;
};

/**
 * Validate the fixed header and read the section table. Shared by the
 * full loader, planSections() and resealPlan(); @p verify_checksums
 * is off for resealing (its whole point is fixing them).
 */
std::vector<RawSection>
readTable(const std::string &blob, bool verify_checksums)
{
    if (blob.size() < kHeaderBytes)
        throw PlanTruncatedError(
            "plan: file shorter than the fixed header");
    const uint8_t *p = reinterpret_cast<const uint8_t *>(blob.data());
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        throw PlanBadMagicError("plan: bad magic (not a plan file)");
    uint32_t version, endian, section_count;
    uint64_t file_bytes;
    std::memcpy(&version, p + 8, 4);
    std::memcpy(&endian, p + 12, 4);
    std::memcpy(&file_bytes, p + 16, 8);
    std::memcpy(&section_count, p + 24, 4);
    if (endian != kEndianTag)
        throw PlanVersionError(
            "plan: byte-order mismatch (plan written on a "
            "different-endian machine)");
    if (version != kPlanFormatVersion)
        throw PlanVersionError(
            "plan: format version " + std::to_string(version) +
            " unsupported (this build reads version " +
            std::to_string(kPlanFormatVersion) + ")");
    if (file_bytes != blob.size())
        throw PlanTruncatedError(
            "plan: file is " + std::to_string(blob.size()) +
            " bytes but the header declares " +
            std::to_string(file_bytes));
    if (section_count == 0 || section_count > kMaxSections)
        throw PlanFormatError("plan: implausible section count " +
                              std::to_string(section_count));
    size_t table_end =
        kHeaderBytes + static_cast<size_t>(section_count) *
                           kTableEntryBytes;
    if (table_end > blob.size())
        throw PlanTruncatedError(
            "plan: file ends inside the section table");

    std::vector<RawSection> sections(section_count);
    for (uint32_t i = 0; i < section_count; ++i) {
        const uint8_t *e = p + kHeaderBytes + i * kTableEntryBytes;
        RawSection &s = sections[i];
        std::memcpy(&s.tag, e, 4);
        std::memcpy(&s.offset, e + 4, 8);
        std::memcpy(&s.bytes, e + 12, 8);
        std::memcpy(&s.checksum, e + 20, 8);
        bool known = false;
        for (uint32_t t : kSectionOrder)
            known = known || t == s.tag;
        if (!known)
            throw PlanFormatError("plan: unknown section tag '" +
                                  tagName(s.tag) + "'");
        if (s.offset < table_end || s.offset > blob.size() ||
            s.bytes > blob.size() - s.offset)
            throw PlanTruncatedError(
                "plan: section '" + tagName(s.tag) +
                "' extends past the end of the file");
        if (verify_checksums &&
            planChecksum(p + s.offset,
                         static_cast<size_t>(s.bytes)) != s.checksum)
            throw PlanChecksumError("plan: checksum mismatch in "
                                    "section '" +
                                    tagName(s.tag) + "'");
    }
    return sections;
}

const RawSection &
findSection(const std::vector<RawSection> &sections, uint32_t tag)
{
    const RawSection *found = nullptr;
    for (const RawSection &s : sections) {
        if (s.tag == tag) {
            if (found)
                throw PlanFormatError("plan: duplicate section '" +
                                      tagName(tag) + "'");
            found = &s;
        }
    }
    if (!found)
        throw PlanFormatError("plan: missing section '" +
                              tagName(tag) + "'");
    return *found;
}

ByteReader
sectionReader(const std::string &blob,
              const std::vector<RawSection> &sections, uint32_t tag,
              const char *what)
{
    const RawSection &s = findSection(sections, tag);
    return ByteReader(
        reinterpret_cast<const uint8_t *>(blob.data()) + s.offset,
        static_cast<size_t>(s.bytes), what);
}

} // namespace

uint64_t
planChecksum(const void *data, size_t n)
{
    // FNV-1a 64: tiny, dependency-free, byte-order independent, and
    // plenty to catch bit rot / truncation (not a cryptographic MAC).
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::string
serializePlan(const Graph &g, const ProgramArtifact &art,
              const CompileReport &report, const ParamStore &store,
              const std::string &tag, int loss_id)
{
    if (static_cast<int>(art.constPool.size()) != g.numNodes() ||
        static_cast<int>(art.variants.size()) != g.numNodes() ||
        static_cast<int>(art.plan.values.size()) != g.numNodes())
        throw PlanFormatError(
            "serializePlan: artifact does not cover the graph");

    std::vector<std::pair<uint32_t, std::string>> sections;
    sections.reserve(kNumSections);
    sections.emplace_back(
        kSecMeta,
        buildMeta(tag, report.precision, loss_id, g.numNodes()));
    sections.emplace_back(kSecReport, buildReport(report));
    sections.emplace_back(kSecGraph, buildGraph(g));
    sections.emplace_back(kSecOrder, buildOrder(art.order));
    sections.emplace_back(kSecVariants, buildVariants(art.variants));
    sections.emplace_back(kSecLaunch, buildLaunch(art));
    sections.emplace_back(kSecMemPlan, buildMemPlan(art.plan));
    sections.emplace_back(kSecConsts, buildConsts(g, art.constPool));
    sections.emplace_back(kSecParams, buildParams(g, store));

    uint64_t offset = kHeaderBytes + sections.size() * kTableEntryBytes;
    uint64_t total = offset;
    for (const auto &[t, payload] : sections)
        total += payload.size();

    ByteWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u32(kPlanFormatVersion);
    w.u32(kEndianTag);
    w.u64(total);
    w.u32(static_cast<uint32_t>(sections.size()));
    for (const auto &[t, payload] : sections) {
        w.u32(t);
        w.u64(offset);
        w.u64(payload.size());
        w.u64(planChecksum(payload.data(), payload.size()));
        offset += payload.size();
    }
    for (const auto &[t, payload] : sections)
        w.raw(payload.data(), payload.size());
    return w.take();
}

namespace {

PlanData
deserializeImpl(const std::string &bytes)
{
    std::vector<RawSection> sections = readTable(bytes, true);
    for (uint32_t tag : kSectionOrder)
        findSection(sections, tag); // presence + uniqueness

    PlanData pd;

    { // META
        ByteReader r = sectionReader(bytes, sections, kSecMeta, "META");
        pd.tag = r.str();
        uint8_t prec = r.get<uint8_t>();
        if (prec > static_cast<uint8_t>(Precision::Int8))
            throw PlanFormatError("plan: bad precision tag");
        pd.precision = static_cast<Precision>(prec);
        pd.lossId = r.get<int32_t>();
        r.get<uint32_t>(); // node count; cross-checked against GRPH
        r.finish();
    }

    { // RPRT
        ByteReader r =
            sectionReader(bytes, sections, kSecReport, "RPRT");
        CompileReport &rep = pd.report;
        uint8_t prec = r.get<uint8_t>();
        if (prec > static_cast<uint8_t>(Precision::Int8))
            throw PlanFormatError("plan: bad report precision tag");
        rep.precision = static_cast<Precision>(prec);
        rep.forwardNodes = r.get<int32_t>();
        rep.backwardNodes = r.get<int32_t>();
        rep.trainableTensors = r.get<int32_t>();
        rep.prunedNodes = r.get<int32_t>();
        rep.fusions = r.get<int32_t>();
        rep.folded = r.get<int32_t>();
        rep.flopsPerStep = r.get<double>();
        rep.arenaBytesNoReorder = r.get<int64_t>();
        rep.backend.nodesRemoved = r.get<int32_t>();
        rep.backend.nodesFused = r.get<int32_t>();
        rep.backend.nodesFolded = r.get<int32_t>();
        rep.backend.winogradBound = r.get<int32_t>();
        rep.backend.blockedBound = r.get<int32_t>();
        rep.backend.int8Bound = r.get<int32_t>();
        rep.quant.quantizedOps = r.get<int32_t>();
        rep.quant.quantizeNodes = r.get<int32_t>();
        rep.quant.dequantizeNodes = r.get<int32_t>();
        rep.quant.requantFolded = r.get<int32_t>();
        rep.quant.prequantizedWeights = r.get<int32_t>();
        r.finish();
    }

    { // GRPH — reconstruct via addRaw: NO shape/dtype inference, and
      // compiled graphs may hold forward input references, so input
      // ids are validated only after the whole table exists.
        ByteReader r =
            sectionReader(bytes, sections, kSecGraph, "GRPH");
        uint32_t num_nodes = r.get<uint32_t>();
        for (uint32_t i = 0; i < num_nodes; ++i) {
            Node n;
            std::string op = r.str();
            try {
                n.op = opFromName(op);
            } catch (const std::exception &) {
                throw PlanUnknownKernelError(
                    "plan: op '" + op +
                    "' is not in this build's catalogue");
            }
            n.name = r.str();
            n.trainable = r.get<uint8_t>() != 0;
            uint8_t dt = r.get<uint8_t>();
            if (dt > static_cast<uint8_t>(DType::I8))
                throw PlanFormatError("plan: bad dtype tag");
            n.dtype = static_cast<DType>(dt);
            uint32_t num_inputs = r.get<uint32_t>();
            r.need(static_cast<size_t>(num_inputs) * 4);
            n.inputs.reserve(num_inputs);
            for (uint32_t j = 0; j < num_inputs; ++j)
                n.inputs.push_back(r.get<int32_t>());
            uint32_t rank = r.get<uint32_t>();
            r.need(static_cast<size_t>(rank) * 8);
            n.shape.reserve(rank);
            for (uint32_t j = 0; j < rank; ++j)
                n.shape.push_back(r.get<int64_t>());
            uint32_t num_attrs = r.get<uint32_t>();
            for (uint32_t j = 0; j < num_attrs; ++j) {
                std::string key = r.str();
                n.attrs.set(key, readAttr(r));
            }
            pd.graph.addRaw(std::move(n));
        }
        uint32_t num_outputs = r.get<uint32_t>();
        for (uint32_t i = 0; i < num_outputs; ++i) {
            int o = r.get<int32_t>();
            if (o < 0 || o >= pd.graph.numNodes())
                throw PlanFormatError("plan: output id out of range");
            pd.graph.markOutput(o);
        }
        r.finish();
        for (int id = 0; id < pd.graph.numNodes(); ++id) {
            for (int in : pd.graph.node(id).inputs) {
                if (in < 0 || in >= pd.graph.numNodes())
                    throw PlanFormatError(
                        "plan: input id out of range");
            }
        }
        // Shapes and dtypes are DERIVED facts (Graph::add infers
        // both); a plan gets no say in them. Re-infer now that the
        // whole table exists (compiled graphs hold forward input
        // refs, so this could not run per-node above) and reject any
        // divergence — a crafted shape/dtype is how a checksummed-
        // but-hostile file would steer kernels past their buffers.
        for (int id = 0; id < pd.graph.numNodes(); ++id) {
            const Node &n = pd.graph.node(id);
            if (n.dtype != inferDType(n.op, n.attrs))
                throw PlanFormatError(
                    "plan: node dtype does not match inference");
            Shape want;
            try {
                want = inferShape(pd.graph, n.op, n.inputs, n.attrs);
            } catch (const std::exception &e) {
                throw PlanFormatError(
                    std::string("plan: shape inference rejected a "
                                "node: ") +
                    e.what());
            }
            if (want != n.shape)
                throw PlanFormatError(
                    "plan: node shape does not match inference");
        }
    }

    { // ORDR
        ByteReader r =
            sectionReader(bytes, sections, kSecOrder, "ORDR");
        uint32_t count = r.get<uint32_t>();
        if (count != static_cast<uint32_t>(pd.graph.numNodes()))
            throw PlanFormatError(
                "plan: order does not cover the graph");
        std::vector<char> seen(pd.graph.numNodes(), 0);
        pd.artifact.order.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            int id = r.get<int32_t>();
            if (id < 0 || id >= pd.graph.numNodes() || seen[id])
                throw PlanFormatError(
                    "plan: order is not a permutation of node ids");
            seen[id] = 1;
            pd.artifact.order.push_back(id);
        }
        r.finish();
    }

    { // VRNT
        ByteReader r =
            sectionReader(bytes, sections, kSecVariants, "VRNT");
        uint32_t count = r.get<uint32_t>();
        if (count != static_cast<uint32_t>(pd.graph.numNodes()))
            throw PlanFormatError(
                "plan: variants do not cover the graph");
        pd.artifact.variants.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            pd.artifact.variants.push_back(r.str());
        r.finish();
    }

    { // LNCH
        ByteReader r =
            sectionReader(bytes, sections, kSecLaunch, "LNCH");
        pd.artifact.numThreads = r.get<int32_t>();
        pd.artifact.shardedSteps = r.get<int32_t>();
        pd.artifact.serializedByWorkspace = r.get<int32_t>();
        uint32_t count = r.get<uint32_t>();
        r.need(static_cast<size_t>(count) * 4);
        pd.artifact.shardsPerStep.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            pd.artifact.shardsPerStep.push_back(r.get<int32_t>());
        r.finish();
        if (pd.artifact.numThreads < 1 ||
            pd.artifact.numThreads > 4096)
            throw PlanFormatError("plan: implausible thread count");
    }

    { // MPLN
        ByteReader r =
            sectionReader(bytes, sections, kSecMemPlan, "MPLN");
        MemoryPlan &p = pd.artifact.plan;
        uint32_t num_values = r.get<uint32_t>();
        if (num_values != static_cast<uint32_t>(pd.graph.numNodes()))
            throw PlanFormatError(
                "plan: memory plan does not cover the graph");
        p.values.resize(num_values);
        for (ValuePlacement &v : p.values) {
            uint8_t st = r.get<uint8_t>();
            if (st > static_cast<uint8_t>(Storage::Cache))
                throw PlanFormatError("plan: bad storage tag");
            v.storage = static_cast<Storage>(st);
            uint8_t dt = r.get<uint8_t>();
            if (dt > static_cast<uint8_t>(DType::I8))
                throw PlanFormatError("plan: bad placement dtype");
            v.dtype = static_cast<DType>(dt);
            v.offset = r.get<int64_t>();
            v.bytes = r.get<int64_t>();
            v.defPos = r.get<int32_t>();
            v.lastUsePos = r.get<int32_t>();
        }
        uint32_t num_ws = r.get<uint32_t>();
        r.need(static_cast<size_t>(num_ws) * 52); // 3x i32 + 5x i64
        p.workspaces.resize(num_ws);
        for (WorkspacePlacement &ws : p.workspaces) {
            ws.node = r.get<int32_t>();
            ws.stepPos = r.get<int32_t>();
            ws.shards = r.get<int32_t>();
            ws.bytesPerShard = r.get<int64_t>();
            ws.shardStride = r.get<int64_t>();
            ws.offset = r.get<int64_t>();
            ws.sharedBytes = r.get<int64_t>();
            ws.sharedOffset = r.get<int64_t>();
            if (ws.shards < 1)
                throw PlanFormatError(
                    "plan: workspace shard count < 1");
        }
        p.arenaBytes = r.get<int64_t>();
        p.workspaceBytes = r.get<int64_t>();
        p.paramBytes = r.get<int64_t>();
        p.constBytes = r.get<int64_t>();
        p.inputBytes = r.get<int64_t>();
        for (int64_t &b : p.arenaValueBytesByDtype)
            b = r.get<int64_t>();
        for (int64_t &b : p.constBytesByDtype)
            b = r.get<int64_t>();
        uint32_t timeline = r.get<uint32_t>();
        r.need(static_cast<size_t>(timeline) * 8 + 16); // + peak + cache
        p.liveBytesAtStep.resize(timeline);
        for (int64_t &b : p.liveBytesAtStep)
            b = r.get<int64_t>();
        p.peakLiveBytes = r.get<int64_t>();
        p.cacheBytes = r.get<int64_t>(); // format v2
        r.finish();
        if (p.arenaBytes < 0)
            throw PlanFormatError("plan: negative arena extent");
        if (p.cacheBytes < 0)
            throw PlanFormatError("plan: negative cache extent");
    }

    { // CNST — pre-packed pool, no repacking on load.
        ByteReader r =
            sectionReader(bytes, sections, kSecConsts, "CNST");
        pd.artifact.constPool.resize(pd.graph.numNodes());
        uint32_t count = r.get<uint32_t>();
        for (uint32_t i = 0; i < count; ++i) {
            int id = r.get<int32_t>();
            if (id < 0 || id >= pd.graph.numNodes() ||
                pd.graph.node(id).op != OpKind::Const)
                throw PlanFormatError(
                    "plan: const entry names a non-Const node");
            const Node &n = pd.graph.node(id);
            uint64_t nbytes = r.get<uint64_t>();
            int64_t want = numel(n.shape) * dtypeSize(n.dtype);
            if (nbytes != static_cast<uint64_t>(want))
                throw PlanFormatError(
                    "plan: const byte count does not match its "
                    "shape/dtype");
            const uint8_t *data = r.bytes(static_cast<size_t>(nbytes));
            Tensor t = n.dtype == DType::F32
                           ? Tensor(n.shape)
                           : Tensor({(want + 3) / 4});
            std::memcpy(t.data(), data, static_cast<size_t>(nbytes));
            pd.artifact.constPool[id] = std::move(t);
        }
        r.finish();
        for (int id = 0; id < pd.graph.numNodes(); ++id) {
            if (pd.graph.node(id).op == OpKind::Const &&
                !pd.artifact.constPool[id].defined())
                throw PlanFormatError(
                    "plan: const pool is missing a Const node");
        }
    }

    { // PRMS
        ByteReader r =
            sectionReader(bytes, sections, kSecParams, "PRMS");
        uint32_t count = r.get<uint32_t>();
        // Bounds before allocation, like every other section: the
        // entry count must equal the graph's Param population (full
        // coverage is required anyway — see `covered` below).
        if (count != pd.graph.paramIds().size())
            throw PlanFormatError(
                "plan: param section does not cover the graph's "
                "Param nodes");
        pd.params.reserve(count);
        // Track which Param NODES were covered: entry-count equality
        // alone would let a duplicated name shadow a missing one,
        // which materialize() would then silently zero-fill — a
        // wrong-output load instead of a typed rejection.
        std::vector<char> covered(pd.graph.numNodes(), 0);
        for (uint32_t i = 0; i < count; ++i) {
            std::string name = r.str();
            int pid = pd.graph.findParam(name);
            if (pid < 0)
                throw PlanFormatError(
                    "plan: param '" + name +
                    "' is not in the graph");
            if (covered[pid])
                throw PlanFormatError("plan: duplicate param '" +
                                      name + "'");
            covered[pid] = 1;
            uint32_t rank = r.get<uint32_t>();
            Shape shape;
            shape.reserve(rank);
            for (uint32_t j = 0; j < rank; ++j)
                shape.push_back(r.get<int64_t>());
            if (shape != pd.graph.node(pid).shape)
                throw PlanFormatError(
                    "plan: param '" + name +
                    "' shape does not match the graph");
            Tensor t(shape);
            const uint8_t *data = r.bytes(
                sizeof(float) * static_cast<size_t>(t.size()));
            std::memcpy(t.data(), data,
                        sizeof(float) * static_cast<size_t>(t.size()));
            pd.params.emplace_back(std::move(name), std::move(t));
        }
        r.finish();
        // count == paramIds().size() and `covered` rejected
        // duplicates, so every Param node is accounted for.
    }

    // Kernel availability: plans bind by registry name, so reject a
    // plan that needs kernels this build does not have — distinctly,
    // instead of failing deep inside the executor.
    for (int id : pd.artifact.order) {
        const Node &n = pd.graph.node(id);
        if (isSourceOp(n.op))
            continue;
        const std::string &v = pd.artifact.variants[id];
        if (!hasKernelVariant(n.op, v) && !hasKernelVariant(n.op, ""))
            throw PlanUnknownKernelError(
                std::string("plan: no kernel registered for '") +
                opName(n.op) + "/" + v + "'");
    }

    return pd;
}

} // namespace

PlanData
deserializePlan(const std::string &bytes)
{
    try {
        return deserializeImpl(bytes);
    } catch (const std::bad_alloc &) {
        // Checksums admit any CRAFTED file, and shapes/counts in one
        // can demand absurd allocations; keep the error typed instead
        // of letting bad_alloc escape the PlanError contract.
        throw PlanFormatError(
            "plan: payload demands an implausible allocation");
    }
}

void
writePlanFile(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        throw PlanError("plan: cannot open '" + path +
                        "' for writing");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f)
        throw PlanError("plan: short write to '" + path + "'");
}

std::string
readPlanFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw PlanError("plan: cannot open '" + path + "'");
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

std::unique_ptr<InferenceProgram>
loadPlanFromBytes(const std::string &bytes,
                  std::shared_ptr<ParamStore> store)
{
    // The zero-recompile contract, enforced: nothing between here and
    // the return may invoke planMemory/planLaunches/reorderForMemory/
    // quantizePass. (The snapshot is process-global, so concurrent
    // compilation on another thread would false-positive — load plans
    // before spinning up compile work, as ServingEngine does.)
    PipelineCounters before = pipelineCounters();

    PlanData pd = deserializePlan(bytes);
    if (!store)
        store = std::make_shared<ParamStore>();
    for (auto &[name, t] : pd.params)
        store->set(name, std::move(t));

    std::unique_ptr<InferenceProgram> prog;
    try {
        prog = std::make_unique<InferenceProgram>(
            std::move(pd.graph), store, std::move(pd.artifact),
            std::move(pd.report));
    } catch (const PlanError &) {
        throw;
    } catch (const std::exception &e) {
        throw PlanFormatError(std::string("plan: bind failed: ") +
                              e.what());
    }

    if (pipelineCounters() != before)
        throw std::logic_error(
            "loadPlan: a compile pipeline stage ran during load — "
            "the zero-recompile contract is broken");
    return prog;
}

std::unique_ptr<InferenceProgram>
loadPlan(const std::string &path, std::shared_ptr<ParamStore> store)
{
    return loadPlanFromBytes(readPlanFile(path), std::move(store));
}

std::vector<PlanSectionInfo>
planSections(const std::string &bytes)
{
    std::vector<RawSection> sections = readTable(bytes, false);
    std::vector<PlanSectionInfo> out;
    out.reserve(sections.size());
    const uint8_t *p = reinterpret_cast<const uint8_t *>(bytes.data());
    for (const RawSection &s : sections) {
        PlanSectionInfo info;
        info.tag = tagName(s.tag);
        info.offset = s.offset;
        info.bytes = s.bytes;
        info.checksum = s.checksum;
        info.checksumOk =
            planChecksum(p + s.offset, static_cast<size_t>(s.bytes)) ==
            s.checksum;
        out.push_back(info);
    }
    return out;
}

void
resealPlan(std::string &blob)
{
    std::vector<RawSection> sections = readTable(blob, false);
    uint8_t *p = reinterpret_cast<uint8_t *>(&blob[0]);
    for (size_t i = 0; i < sections.size(); ++i) {
        uint64_t sum = planChecksum(
            p + sections[i].offset,
            static_cast<size_t>(sections[i].bytes));
        std::memcpy(p + kHeaderBytes + i * kTableEntryBytes + 20, &sum,
                    8);
    }
}

// Defined here (not engine.cc) so the engine keeps zero dependency on
// the plan format; the declaration lives on InferenceProgram because
// saving IS a program-level operation.
void
InferenceProgram::savePlan(const std::string &path,
                           const std::string &tag) const
{
    writePlanFile(path,
                  serializePlan(graph_, executor_->exportArtifact(),
                                report_, *store_, tag));
}

} // namespace pe
