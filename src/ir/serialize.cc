#include "ir/serialize.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace pe {

namespace {

void
writeEscaped(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
writeAttrValue(std::ostringstream &os, const AttrValue &v)
{
    if (std::holds_alternative<int64_t>(v)) {
        os << "{\"i\":" << std::get<int64_t>(v) << "}";
    } else if (std::holds_alternative<double>(v)) {
        os << "{\"f\":" << std::get<double>(v) << "}";
    } else if (std::holds_alternative<std::vector<int64_t>>(v)) {
        os << "{\"ints\":[";
        const auto &xs = std::get<std::vector<int64_t>>(v);
        for (size_t i = 0; i < xs.size(); ++i) {
            if (i)
                os << ",";
            os << xs[i];
        }
        os << "]}";
    } else {
        os << "{\"s\":";
        writeEscaped(os, std::get<std::string>(v));
        os << "}";
    }
}

/** A tiny recursive-descent JSON reader sufficient for our schema. */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("json: unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("json: expected '") + c +
                                     "' at " + std::to_string(pos_));
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    readString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            out += text_[pos_++];
        }
        expect('"');
        return out;
    }

    double
    readNumber()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        return std::stod(text_.substr(start, pos_ - start));
    }

    int64_t readInt() { return static_cast<int64_t>(readNumber()); }

    std::vector<int64_t>
    readIntArray()
    {
        std::vector<int64_t> out;
        expect('[');
        if (tryConsume(']'))
            return out;
        do {
            out.push_back(readInt());
        } while (tryConsume(','));
        expect(']');
        return out;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;
};

AttrValue
readAttrValue(JsonReader &r)
{
    r.expect('{');
    std::string tag = r.readString();
    r.expect(':');
    AttrValue v;
    if (tag == "i") {
        v = r.readInt();
    } else if (tag == "f") {
        v = r.readNumber();
    } else if (tag == "ints") {
        v = r.readIntArray();
    } else if (tag == "s") {
        v = r.readString();
    } else {
        throw std::runtime_error("json: bad attr tag " + tag);
    }
    r.expect('}');
    return v;
}

} // namespace

std::string
graphToJson(const Graph &g)
{
    std::ostringstream os;
    os << "{\"nodes\":[\n";
    for (int i = 0; i < g.numNodes(); ++i) {
        const Node &n = g.node(i);
        if (i)
            os << ",\n";
        os << "{\"op\":";
        writeEscaped(os, opName(n.op));
        os << ",\"inputs\":[";
        for (size_t j = 0; j < n.inputs.size(); ++j) {
            if (j)
                os << ",";
            os << n.inputs[j];
        }
        os << "],\"name\":";
        writeEscaped(os, n.name);
        os << ",\"trainable\":" << (n.trainable ? 1 : 0);
        os << ",\"attrs\":{";
        bool first = true;
        for (const auto &[k, v] : n.attrs.items()) {
            if (!first)
                os << ",";
            first = false;
            writeEscaped(os, k);
            os << ":";
            writeAttrValue(os, v);
        }
        os << "}}";
    }
    os << "\n],\"outputs\":[";
    for (size_t i = 0; i < g.outputs().size(); ++i) {
        if (i)
            os << ",";
        os << g.outputs()[i];
    }
    os << "]}";
    return os.str();
}

Graph
graphFromJson(const std::string &json)
{
    JsonReader r(json);
    Graph g;
    r.expect('{');
    if (r.readString() != "nodes")
        throw std::runtime_error("json: expected nodes key");
    r.expect(':');
    r.expect('[');
    bool first = true;
    while (true) {
        if (first && r.tryConsume(']'))
            break;
        first = false;
        r.expect('{');
        OpKind op = OpKind::Identity;
        std::vector<int> inputs;
        std::string name;
        bool trainable = false;
        Attrs attrs;
        do {
            std::string key = r.readString();
            r.expect(':');
            if (key == "op") {
                op = opFromName(r.readString());
            } else if (key == "inputs") {
                for (int64_t v : r.readIntArray())
                    inputs.push_back(static_cast<int>(v));
            } else if (key == "name") {
                name = r.readString();
            } else if (key == "trainable") {
                trainable = r.readInt() != 0;
            } else if (key == "attrs") {
                r.expect('{');
                if (!r.tryConsume('}')) {
                    do {
                        std::string ak = r.readString();
                        r.expect(':');
                        attrs.set(ak, readAttrValue(r));
                    } while (r.tryConsume(','));
                    r.expect('}');
                }
            } else {
                throw std::runtime_error("json: bad node key " + key);
            }
        } while (r.tryConsume(','));
        r.expect('}');
        int id = g.add(op, std::move(inputs), std::move(attrs), name);
        g.node(id).trainable = trainable;
        if (!r.tryConsume(',')) {
            r.expect(']');
            break;
        }
    }
    r.expect(',');
    if (r.readString() != "outputs")
        throw std::runtime_error("json: expected outputs key");
    r.expect(':');
    for (int64_t v : r.readIntArray())
        g.markOutput(static_cast<int>(v));
    r.expect('}');
    return g;
}

} // namespace pe
