/**
 * @file
 * Compile-time shape inference for every op in the catalogue.
 */

#pragma once

#include <vector>

#include "core/shape.h"
#include "ir/attrs.h"
#include "ir/op.h"

namespace pe {

class Graph;

/**
 * Infer the output shape of a prospective node.
 *
 * @param g       graph providing the input nodes' shapes
 * @param op      operator kind
 * @param inputs  input node ids (must already exist in @p g)
 * @param attrs   node attributes
 * @throws std::runtime_error on rank/extent mismatches (this is the IR's
 *         type checker; malformed graphs fail at compile time, not run
 *         time).
 */
Shape inferShape(const Graph &g, OpKind op, const std::vector<int> &inputs,
                 const Attrs &attrs);

/** Output spatial extent of a convolution/pool window. */
int64_t convOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t pad);

} // namespace pe
