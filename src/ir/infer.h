/**
 * @file
 * Compile-time shape inference for every op in the catalogue.
 */

#pragma once

#include <vector>

#include "core/dtype.h"
#include "core/shape.h"
#include "ir/attrs.h"
#include "ir/op.h"

namespace pe {

class Graph;

/**
 * Infer the output shape of a prospective node.
 *
 * @param g       graph providing the input nodes' shapes
 * @param op      operator kind
 * @param inputs  input node ids (must already exist in @p g)
 * @param attrs   node attributes
 * @throws std::runtime_error on rank/extent mismatches (this is the IR's
 *         type checker; malformed graphs fail at compile time, not run
 *         time).
 */
Shape inferShape(const Graph &g, OpKind op, const std::vector<int> &inputs,
                 const Attrs &attrs);

/** Output spatial extent of a convolution/pool window. */
int64_t convOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t pad);

/**
 * Storage dtype of a prospective node's output. Determined by op kind
 * alone except for Quantize (and dtype-tagged Const/Dequantize
 * sources), whose "dtype" attr names the non-f32 storage ("i8" /
 * "f16"). Everything outside the quantization subsystem is F32.
 */
DType inferDType(OpKind op, const Attrs &attrs);

} // namespace pe
