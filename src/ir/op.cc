#include "ir/op.h"

#include <stdexcept>
#include <unordered_map>

namespace pe {

namespace {

const std::unordered_map<OpKind, const char *> &
nameTable()
{
    static const std::unordered_map<OpKind, const char *> table = {
        {OpKind::Input, "Input"},
        {OpKind::Param, "Param"},
        {OpKind::Const, "Const"},
        {OpKind::Add, "Add"},
        {OpKind::Sub, "Sub"},
        {OpKind::Mul, "Mul"},
        {OpKind::Div, "Div"},
        {OpKind::Neg, "Neg"},
        {OpKind::Relu, "Relu"},
        {OpKind::Gelu, "Gelu"},
        {OpKind::Silu, "Silu"},
        {OpKind::Sigmoid, "Sigmoid"},
        {OpKind::Tanh, "Tanh"},
        {OpKind::Exp, "Exp"},
        {OpKind::Log, "Log"},
        {OpKind::Sqrt, "Sqrt"},
        {OpKind::Scale, "Scale"},
        {OpKind::AddScalar, "AddScalar"},
        {OpKind::ReluGrad, "ReluGrad"},
        {OpKind::GeluGrad, "GeluGrad"},
        {OpKind::SiluGrad, "SiluGrad"},
        {OpKind::SigmoidGrad, "SigmoidGrad"},
        {OpKind::TanhGrad, "TanhGrad"},
        {OpKind::MatMul, "MatMul"},
        {OpKind::BatchMatMul, "BatchMatMul"},
        {OpKind::Reshape, "Reshape"},
        {OpKind::Permute, "Permute"},
        {OpKind::Slice, "Slice"},
        {OpKind::Pad, "Pad"},
        {OpKind::BroadcastTo, "BroadcastTo"},
        {OpKind::ReduceSum, "ReduceSum"},
        {OpKind::ReduceMean, "ReduceMean"},
        {OpKind::Conv2d, "Conv2d"},
        {OpKind::Conv2dBwdInput, "Conv2dBwdInput"},
        {OpKind::Conv2dBwdWeight, "Conv2dBwdWeight"},
        {OpKind::DwConv2d, "DwConv2d"},
        {OpKind::DwConv2dBwdInput, "DwConv2dBwdInput"},
        {OpKind::DwConv2dBwdWeight, "DwConv2dBwdWeight"},
        {OpKind::AvgPool2d, "AvgPool2d"},
        {OpKind::AvgPool2dGrad, "AvgPool2dGrad"},
        {OpKind::GlobalAvgPool, "GlobalAvgPool"},
        {OpKind::GlobalAvgPoolGrad, "GlobalAvgPoolGrad"},
        {OpKind::Softmax, "Softmax"},
        {OpKind::SoftmaxGrad, "SoftmaxGrad"},
        {OpKind::LayerNorm, "LayerNorm"},
        {OpKind::LayerNormGradX, "LayerNormGradX"},
        {OpKind::LayerNormGradGamma, "LayerNormGradGamma"},
        {OpKind::RMSNorm, "RMSNorm"},
        {OpKind::RMSNormGradX, "RMSNormGradX"},
        {OpKind::RMSNormGradGamma, "RMSNormGradGamma"},
        {OpKind::Embedding, "Embedding"},
        {OpKind::EmbeddingGrad, "EmbeddingGrad"},
        {OpKind::CrossEntropy, "CrossEntropy"},
        {OpKind::CrossEntropyGrad, "CrossEntropyGrad"},
        {OpKind::Mse, "Mse"},
        {OpKind::MseGrad, "MseGrad"},
        {OpKind::ApplySgd, "ApplySgd"},
        {OpKind::ApplyMomentum, "ApplyMomentum"},
        {OpKind::ApplyAdam, "ApplyAdam"},
        {OpKind::ApplyLion, "ApplyLion"},
        {OpKind::AccumGrad, "AccumGrad"},
        {OpKind::ConvBiasAct, "ConvBiasAct"},
        {OpKind::DwConvBiasAct, "DwConvBiasAct"},
        {OpKind::MatMulBiasAct, "MatMulBiasAct"},
        {OpKind::Quantize, "Quantize"},
        {OpKind::Dequantize, "Dequantize"},
        {OpKind::Requantize, "Requantize"},
        {OpKind::QuantMatMul, "QuantMatMul"},
        {OpKind::QuantConv2d, "QuantConv2d"},
        {OpKind::QuantDwConv2d, "QuantDwConv2d"},
        {OpKind::QuantAdd, "QuantAdd"},
        {OpKind::QuantRelu, "QuantRelu"},
        {OpKind::CacheWrite, "CacheWrite"},
        {OpKind::FusedAttention, "FusedAttention"},
        {OpKind::Identity, "Identity"},
    };
    return table;
}

} // namespace

const char *
opName(OpKind op)
{
    auto it = nameTable().find(op);
    if (it == nameTable().end())
        throw std::runtime_error("opName: unknown op");
    return it->second;
}

OpKind
opFromName(const std::string &name)
{
    static const auto reverse = [] {
        std::unordered_map<std::string, OpKind> r;
        for (const auto &[k, v] : nameTable())
            r[v] = k;
        return r;
    }();
    auto it = reverse.find(name);
    if (it == reverse.end())
        throw std::runtime_error("opFromName: unknown op " + name);
    return it->second;
}

bool
isSourceOp(OpKind op)
{
    return op == OpKind::Input || op == OpKind::Param ||
           op == OpKind::Const;
}

bool
isQuantComputeOp(OpKind op)
{
    switch (op) {
      case OpKind::QuantMatMul:
      case OpKind::QuantConv2d:
      case OpKind::QuantDwConv2d:
      case OpKind::QuantAdd:
      case OpKind::QuantRelu:
        return true;
      default:
        return false;
    }
}

bool
isInPlaceOp(OpKind op)
{
    switch (op) {
      case OpKind::ApplySgd:
      case OpKind::ApplyMomentum:
      case OpKind::ApplyAdam:
      case OpKind::ApplyLion:
      case OpKind::AccumGrad:
        return true;
      default:
        return false;
    }
}

} // namespace pe
