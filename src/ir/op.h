/**
 * @file
 * The primitive operator catalogue of the PockEngine IR.
 *
 * Forward and backward graphs are built from this single op set
 * (Section 2.5 of the paper: "the same set of primitive operations as
 * inference"), which is what lets inference-style backends execute
 * training graphs. Gradient-specific ops (e.g. Conv2dBwdWeight) are
 * ordinary catalogue members with ordinary kernels.
 */

#pragma once

#include <string>

namespace pe {

/** Every operator the IR can express. */
enum class OpKind {
    // --- graph sources -------------------------------------------------
    Input,      ///< runtime-fed tensor (data, labels)
    Param,      ///< persistent tensor (weights, optimizer state)
    Const,      ///< compile-time constant

    // --- elementwise binary (numpy broadcast) ---------------------------
    Add, Sub, Mul, Div,

    // --- elementwise unary ----------------------------------------------
    Neg, Relu, Gelu, Silu, Sigmoid, Tanh, Exp, Log, Sqrt,
    Scale,      ///< y = alpha * x        (attr "alpha")
    AddScalar,  ///< y = x + alpha        (attr "alpha")

    // --- activation backward helpers ------------------------------------
    ReluGrad,    ///< dx = dy * (x > 0)           inputs: x, dy
    GeluGrad,    ///< dx = dy * gelu'(x)          inputs: x, dy
    SiluGrad,    ///< dx = dy * silu'(x)          inputs: x, dy
    SigmoidGrad, ///< dx = dy * s(x)(1-s(x))      inputs: x, dy
    TanhGrad,    ///< dx = dy * (1 - tanh(x)^2)   inputs: x, dy

    // --- linear algebra ---------------------------------------------------
    MatMul,      ///< 2-D GEMM, attrs "transA"/"transB"
    BatchMatMul, ///< 3-D batched GEMM [B,M,K]x[B,K,N], same trans attrs

    // --- shape ------------------------------------------------------------
    Reshape,     ///< attr "shape" (one -1 allowed)
    Permute,     ///< attr "perm", rank <= 4
    Slice,       ///< attr "axis","begin","end"
    Pad,         ///< zero-pad one axis, attr "axis","before","after"
    BroadcastTo, ///< attr "shape"

    // --- reductions ---------------------------------------------------------
    ReduceSum,   ///< attr "axes", "keepdims"
    ReduceMean,  ///< attr "axes", "keepdims"

    // --- convolution (NCHW) ---------------------------------------------
    Conv2d,           ///< attrs "stride","pad"; W:[Co,Ci,Kh,Kw]
    Conv2dBwdInput,   ///< inputs: W, dy  -> dx
    Conv2dBwdWeight,  ///< inputs: x, dy  -> dW; attr "limitCo" for
                      ///< sub-layer (channel-sparse) backprop
    DwConv2d,         ///< depthwise, W:[C,1,Kh,Kw]
    DwConv2dBwdInput,
    DwConv2dBwdWeight, ///< attr "limitCo"

    // --- pooling -------------------------------------------------------------
    AvgPool2d,     ///< attrs "kernel","stride"
    AvgPool2dGrad,
    GlobalAvgPool,     ///< [N,C,H,W] -> [N,C]
    GlobalAvgPoolGrad, ///< inputs: dy, x(for shape) -> dx

    // --- softmax / normalization ------------------------------------------
    Softmax,        ///< over last axis
    SoftmaxGrad,    ///< inputs: y, dy
    LayerNorm,      ///< inputs: x, gamma, beta; attr "eps"
    LayerNormGradX,     ///< inputs: x, gamma, dy
    LayerNormGradGamma, ///< inputs: x, dy
    RMSNorm,        ///< inputs: x, gamma; attr "eps"
    RMSNormGradX,       ///< inputs: x, gamma, dy
    RMSNormGradGamma,   ///< inputs: x, dy

    // --- embedding ----------------------------------------------------------
    Embedding,     ///< inputs: table [V,D], ids [B,S] -> [B,S,D]
    EmbeddingGrad, ///< inputs: ids, dy -> dTable [V,D]

    // --- losses ---------------------------------------------------------------
    CrossEntropy,     ///< inputs: logits [N,C], labels [N] -> [1]
    CrossEntropyGrad, ///< -> dLogits (softmax - onehot) / N
    Mse,              ///< inputs: pred, target -> [1]
    MseGrad,

    // --- optimizer application (in-place on first input) --------------------
    ApplySgd,      ///< inputs: param, grad; attrs lr, wd, "offset","count"
    ApplyMomentum, ///< inputs: param, grad, vel; attrs lr, momentum
    ApplyAdam,     ///< inputs: param, grad, m, v; attrs lr, b1, b2, eps
    ApplyLion,     ///< inputs: param, grad, m; attrs lr, b1, b2, wd
    AccumGrad,     ///< inputs: buf, grad; buf += grad (in-place)

    // --- fused ops created by the fusion pass --------------------------------
    ConvBiasAct,   ///< Conv2d + bias + activation; attr "act"
    DwConvBiasAct,
    MatMulBiasAct, ///< MatMul + bias + activation; attr "act"

    // --- quantization (src/quant/, QuantizePass) -----------------------------
    // Storage-dtype boundary ops. "dtype" attr names the non-f32 side
    // ("i8" or "f16"); int8 carries per-tensor affine params
    // ("yScale"/"yZp" on Quantize, "xScale"/"xZp" on Dequantize) or,
    // for weights, per-channel scales as a Const f32 input plus a
    // "qaxis" attr (symmetric, zero-point 0).
    Quantize,   ///< f32 -> i8|f16; inputs: x [, scales]
    Dequantize, ///< i8|f16 -> f32; inputs: qx [, scales]
    Requantize, ///< i8 -> i8 rescale; attrs xScale/xZp/yScale/yZp

    // Int8 compute with int32 accumulation. Inputs: qx, qw
    // [, bias f32] [, wscales f32]; attrs "hasBias", "perChannel",
    // "act" plus the originating op's attrs (stride/pad or
    // transA/transB) and quant params xScale/xZp, wScale (per-tensor
    // symmetric weights), yScale/yZp. The fused bias+act forms are the
    // same op with hasBias=1 / act != kActNone.
    QuantMatMul,
    QuantConv2d,
    QuantDwConv2d,
    QuantAdd,  ///< inputs qa, qb; attrs xScale/xZp, bScale/bZp, yScale/yZp
    QuantRelu, ///< relu in the dequantized domain, requantized output

    // --- generative serving (KV cache) ---------------------------------
    // Writes rows of x into a persistent cache value at a runtime
    // position. The output is planned as Storage::Cache: it lives in
    // the per-context cache region, which survives across runs of one
    // session (every other planned value dies within a run). Only the
    // written rows change; everything else keeps its prior contents.
    //
    //   rank-2: x [S,D],   pos [1]           -> cache [maxSeq, D]
    //           rows [pos, pos+S) receive x.
    //   rank-3: x [B,S,D], pos [1] or [B,1]  -> cache [B, maxSeq, D]
    //           per slot b, rows [pos_b, pos_b+S) receive x[b].
    //
    // attr "maxSeq" fixes the cache extent at compile time.
    CacheWrite,

    // Scaled-dot-product attention collapsed into one op by the
    // fuseAttention pass (decode hot loop: five ops / four arena
    // intermediates -> one op whose QK row, softmax, and V-accumulate
    // all live in per-shard workspace). Inputs: Q, K, V, mask; attr
    // "scale" (1/sqrt(headDim)).
    //
    //   rank-2 (prefill): Q [S,Dh], K [M,Dh], V [M,Dh], mask [S,M]
    //                     -> softmax(Q K^T * scale + mask) V  [S,Dh]
    //   rank-3 (decode):  Q [B,S,Dh], K [B,M,Dh], V [B,M,Dh],
    //                     mask [B,S,M] -> [B,S,Dh] (batched over B;
    //                     multi-head folds heads into B).
    //
    // Always fp32: the QuantizePass never rewrites it (like the
    // BatchMatMul/Softmax subgraph it replaces), so int8 graphs reach
    // it through the auto-inserted Dequantize boundaries unchanged.
    FusedAttention,

    Identity,
};

/** Activation codes for the fused ops' "act" attribute. */
enum ActKind : int64_t { kActNone = 0, kActRelu = 1, kActGelu = 2,
                         kActSilu = 3 };

/** Printable mnemonic, e.g. "MatMul". */
const char *opName(OpKind op);

/** Parse a mnemonic back to an OpKind (for deserialization). */
OpKind opFromName(const std::string &name);

/** True for Input/Param/Const. */
bool isSourceOp(OpKind op);

/** True for the in-place optimizer ops (output aliases input 0). */
bool isInPlaceOp(OpKind op);

/** True for the int8-compute ops the QuantizePass emits (the ops the
 *  backend switcher binds to the "int8" kernel variants). */
bool isQuantComputeOp(OpKind op);

/** Approximate FLOP count heuristics live with the op table. */
} // namespace pe
