/**
 * @file
 * Typed attribute map attached to IR nodes.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace pe {

/** One attribute value: integer, float, int list, or string. */
using AttrValue =
    std::variant<int64_t, double, std::vector<int64_t>, std::string>;

/**
 * A small ordered attribute map. Linear scan is fine: nodes carry at most
 * a handful of attributes and the map is only consulted at compile time.
 */
class Attrs
{
  public:
    Attrs() = default;
    Attrs(std::initializer_list<std::pair<std::string, AttrValue>> init)
        : items_(init.begin(), init.end())
    {
    }

    bool has(const std::string &key) const { return find(key) != nullptr; }

    void
    set(const std::string &key, AttrValue value)
    {
        for (auto &kv : items_) {
            if (kv.first == key) {
                kv.second = std::move(value);
                return;
            }
        }
        items_.emplace_back(key, std::move(value));
    }

    int64_t
    getInt(const std::string &key, int64_t dflt) const
    {
        const AttrValue *v = find(key);
        return v ? std::get<int64_t>(*v) : dflt;
    }

    int64_t
    getInt(const std::string &key) const
    {
        const AttrValue *v = find(key);
        if (!v)
            throw std::runtime_error("missing int attr: " + key);
        return std::get<int64_t>(*v);
    }

    double
    getFloat(const std::string &key, double dflt) const
    {
        const AttrValue *v = find(key);
        return v ? std::get<double>(*v) : dflt;
    }

    std::vector<int64_t>
    getInts(const std::string &key) const
    {
        const AttrValue *v = find(key);
        if (!v)
            throw std::runtime_error("missing ints attr: " + key);
        return std::get<std::vector<int64_t>>(*v);
    }

    std::vector<int64_t>
    getInts(const std::string &key, std::vector<int64_t> dflt) const
    {
        const AttrValue *v = find(key);
        return v ? std::get<std::vector<int64_t>>(*v) : dflt;
    }

    std::string
    getString(const std::string &key, const std::string &dflt = "") const
    {
        const AttrValue *v = find(key);
        return v ? std::get<std::string>(*v) : dflt;
    }

    const std::vector<std::pair<std::string, AttrValue>> &
    items() const
    {
        return items_;
    }

  private:
    const AttrValue *
    find(const std::string &key) const
    {
        for (const auto &kv : items_) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }

    std::vector<std::pair<std::string, AttrValue>> items_;
};

} // namespace pe
