#include "ir/graph.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include "ir/infer.h"

namespace pe {

int
Graph::add(OpKind op, std::vector<int> inputs, Attrs attrs,
           std::string name)
{
    for (int i : inputs) {
        if (i < 0 || i >= numNodes())
            throw std::runtime_error("Graph::add: bad input id");
    }
    Node n;
    n.id = numNodes();
    n.op = op;
    n.inputs = std::move(inputs);
    n.attrs = std::move(attrs);
    n.name = std::move(name);
    n.shape = inferShape(*this, op, n.inputs, n.attrs);
    n.dtype = inferDType(op, n.attrs);
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

int
Graph::addRaw(Node n)
{
    n.id = numNodes();
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

int
Graph::input(Shape shape, std::string name)
{
    Attrs a;
    a.set("shape", shape);
    return add(OpKind::Input, {}, std::move(a), std::move(name));
}

int
Graph::param(Shape shape, std::string name, bool trainable)
{
    if (name.empty())
        throw std::runtime_error("Graph::param: params must be named");
    if (findParam(name) >= 0)
        throw std::runtime_error("Graph::param: duplicate name " + name);
    Attrs a;
    a.set("shape", shape);
    int id = add(OpKind::Param, {}, std::move(a), std::move(name));
    nodes_[id].trainable = trainable;
    return id;
}

int
Graph::constant(Shape shape, std::string name)
{
    Attrs a;
    a.set("shape", shape);
    return add(OpKind::Const, {}, std::move(a), std::move(name));
}

std::vector<int>
Graph::paramIds() const
{
    std::vector<int> ids;
    for (const Node &n : nodes_) {
        if (n.op == OpKind::Param)
            ids.push_back(n.id);
    }
    return ids;
}

std::vector<int>
Graph::inputIds() const
{
    std::vector<int> ids;
    for (const Node &n : nodes_) {
        if (n.op == OpKind::Input)
            ids.push_back(n.id);
    }
    return ids;
}

int
Graph::findParam(const std::string &name) const
{
    for (const Node &n : nodes_) {
        if (n.op == OpKind::Param && n.name == name)
            return n.id;
    }
    return -1;
}

std::vector<std::vector<int>>
Graph::consumers() const
{
    std::vector<std::vector<int>> users(nodes_.size());
    for (const Node &n : nodes_) {
        for (int i : n.inputs)
            users[i].push_back(n.id);
    }
    return users;
}

std::vector<int>
Graph::topoOrder() const
{
    int n = numNodes();
    // Fast path: creation order is topological (true until a rewrite
    // points a node at a later-created input).
    bool forward_only = true;
    for (const Node &node : nodes_) {
        for (int in : node.inputs) {
            if (in >= node.id) {
                forward_only = false;
                break;
            }
        }
        if (!forward_only)
            break;
    }
    std::vector<int> order;
    order.reserve(n);
    if (forward_only) {
        for (int i = 0; i < n; ++i)
            order.push_back(i);
        return order;
    }
    // Stable Kahn: among ready nodes always emit the smallest id, so
    // the result is exactly creation order whenever that is valid.
    std::vector<int> indegree(n, 0);
    auto users = consumers();
    for (const Node &node : nodes_)
        indegree[node.id] = static_cast<int>(node.inputs.size());
    std::set<int> ready;
    for (int i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.insert(i);
    }
    while (!ready.empty()) {
        int id = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(id);
        for (int u : users[id]) {
            if (--indegree[u] == 0)
                ready.insert(u);
        }
    }
    if (static_cast<int>(order.size()) != n)
        throw std::runtime_error("Graph::topoOrder: cycle detected");
    return order;
}

std::vector<int>
Graph::compact(const std::vector<bool> &live)
{
    // Two sweeps: assign new ids first, then remap inputs — a live
    // node may reference a LATER-created input after rewiring passes
    // (QuantizePass), so the remap table must be complete before any
    // input is translated.
    std::vector<int> remap(nodes_.size(), -1);
    int next = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (live[i])
            remap[i] = next++;
    }
    std::vector<Node> kept;
    kept.reserve(static_cast<size_t>(next));
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (!live[i])
            continue;
        Node n = std::move(nodes_[i]);
        n.id = remap[i];
        for (int &in : n.inputs) {
            if (remap[in] < 0)
                throw std::runtime_error("compact: dead input kept alive");
            in = remap[in];
        }
        kept.push_back(std::move(n));
    }
    nodes_ = std::move(kept);
    std::vector<int> new_outputs;
    for (int o : outputs_) {
        if (remap[o] >= 0)
            new_outputs.push_back(remap[o]);
    }
    outputs_ = std::move(new_outputs);
    std::unordered_map<int, Tensor> new_const;
    for (auto &[id, t] : constData_) {
        if (remap[id] >= 0)
            new_const.emplace(remap[id], std::move(t));
    }
    constData_ = std::move(new_const);
    return remap;
}

void
Graph::setConstData(int id, Tensor t)
{
    if (node(id).op != OpKind::Const)
        throw std::runtime_error("setConstData: node is not a Const");
    if (t.shape() != node(id).shape)
        throw std::runtime_error("setConstData: shape mismatch");
    constData_[id] = std::move(t);
}

int
Graph::constantOf(Tensor t, std::string name)
{
    int id = constant(t.shape(), std::move(name));
    setConstData(id, std::move(t));
    return id;
}

double
Graph::totalFlops() const
{
    double total = 0;
    for (const Node &n : nodes_)
        total += nodeFlops(*this, n);
    return total;
}

std::string
Graph::toString() const
{
    std::ostringstream os;
    for (const Node &n : nodes_) {
        os << "%" << n.id << " = " << opName(n.op) << "(";
        for (size_t i = 0; i < n.inputs.size(); ++i) {
            if (i)
                os << ", ";
            os << "%" << n.inputs[i];
        }
        os << ") : " << shapeToString(n.shape);
        if (!n.name.empty())
            os << "  # " << n.name << (n.trainable ? " [trainable]" : "");
        os << "\n";
    }
    os << "outputs:";
    for (int o : outputs_)
        os << " %" << o;
    os << "\n";
    return os.str();
}

double
nodeFlops(const Graph &g, const Node &n)
{
    auto out = static_cast<double>(numel(n.shape));
    auto inShape = [&](size_t i) { return g.node(n.inputs[i]).shape; };

    switch (n.op) {
      case OpKind::MatMul:
      case OpKind::MatMulBiasAct: {
        Shape a = inShape(0);
        int64_t k = n.attrs.getInt("transA", 0) ? a[0] : a[1];
        return 2.0 * out * static_cast<double>(k);
      }
      case OpKind::BatchMatMul: {
        Shape a = inShape(0);
        int64_t k = n.attrs.getInt("transA", 0) ? a[1] : a[2];
        return 2.0 * out * static_cast<double>(k);
      }
      case OpKind::FusedAttention: {
        // QK^T and PV are each 2*out*M flops; scale/mask/softmax are
        // lower-order.
        Shape kk = inShape(1);
        int64_t m = kk[kk.size() - 2];
        return 4.0 * out * static_cast<double>(m);
      }
      case OpKind::Conv2d:
      case OpKind::ConvBiasAct: {
        Shape w = inShape(1);
        return 2.0 * out * static_cast<double>(w[1] * w[2] * w[3]);
      }
      case OpKind::Conv2dBwdInput: {
        Shape w = inShape(0);
        double dy = static_cast<double>(numel(inShape(1)));
        return 2.0 * dy * static_cast<double>(w[1] * w[2] * w[3]);
      }
      case OpKind::Conv2dBwdWeight: {
        double dy = static_cast<double>(numel(inShape(1)));
        Shape w = n.shape;
        Shape full_w = n.attrs.getInts("wshape");
        double frac = static_cast<double>(w[0]) /
                      static_cast<double>(full_w[0]);
        return 2.0 * dy * frac *
               static_cast<double>(full_w[1] * full_w[2] * full_w[3]);
      }
      case OpKind::DwConv2d:
      case OpKind::DwConvBiasAct: {
        Shape w = inShape(1);
        return 2.0 * out * static_cast<double>(w[2] * w[3]);
      }
      case OpKind::DwConv2dBwdInput:
      case OpKind::DwConv2dBwdWeight: {
        Shape w = n.op == OpKind::DwConv2dBwdInput
                      ? inShape(0)
                      : Shape(n.attrs.getInts("wshape"));
        double dy = static_cast<double>(numel(inShape(1)));
        return 2.0 * dy * static_cast<double>(w[2] * w[3]);
      }
      case OpKind::LayerNorm:
      case OpKind::LayerNormGradX:
      case OpKind::RMSNorm:
      case OpKind::RMSNormGradX:
        return 8.0 * out;
      case OpKind::Softmax:
      case OpKind::SoftmaxGrad:
      case OpKind::Gelu:
      case OpKind::GeluGrad:
      case OpKind::Silu:
      case OpKind::SiluGrad:
        return 5.0 * out;
      case OpKind::CrossEntropy:
      case OpKind::CrossEntropyGrad:
        return 5.0 * static_cast<double>(numel(inShape(0)));
      case OpKind::Input:
      case OpKind::Param:
      case OpKind::Const:
      case OpKind::Reshape:
      case OpKind::Identity:
        return 0.0;
      case OpKind::ApplyAdam:
      case OpKind::ApplyLion:
        return 8.0 * out;
      default:
        return out; // one flop per output element
    }
}

double
nodeBytes(const Graph &g, const Node &n)
{
    double bytes = 4.0 * static_cast<double>(numel(n.shape));
    for (int i : n.inputs)
        bytes += 4.0 * static_cast<double>(numel(g.node(i).shape));
    if (n.op == OpKind::Reshape || n.op == OpKind::Identity ||
        isSourceOp(n.op)) {
        return 0.0;
    }
    return bytes;
}

} // namespace pe
