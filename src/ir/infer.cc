#include "ir/infer.h"

#include <stdexcept>
#include <string>

#include "ir/graph.h"

namespace pe {

namespace {

[[noreturn]] void
fail(OpKind op, const std::string &msg)
{
    throw std::runtime_error(std::string("inferShape(") + opName(op) +
                             "): " + msg);
}

void
expectInputs(OpKind op, const std::vector<int> &inputs, size_t n)
{
    if (inputs.size() != n) {
        fail(op, "expected " + std::to_string(n) + " inputs, got " +
                 std::to_string(inputs.size()));
    }
}

/// Shape of a 2-D matmul with transpose flags.
Shape
matmulShape(OpKind op, const Shape &a, const Shape &b, bool trans_a,
            bool trans_b)
{
    if (a.size() != 2 || b.size() != 2)
        fail(op, "expects rank-2 operands");
    int64_t m = trans_a ? a[1] : a[0];
    int64_t ka = trans_a ? a[0] : a[1];
    int64_t kb = trans_b ? b[1] : b[0];
    int64_t n = trans_b ? b[0] : b[1];
    if (ka != kb) {
        fail(op, "inner dims mismatch " + shapeToString(a) + " x " +
                 shapeToString(b));
    }
    return {m, n};
}

} // namespace

int64_t
convOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

Shape
inferShape(const Graph &g, OpKind op, const std::vector<int> &inputs,
           const Attrs &attrs)
{
    auto in = [&](size_t i) -> const Shape & {
        return g.node(inputs.at(i)).shape;
    };

    switch (op) {
      case OpKind::Input:
      case OpKind::Param:
      case OpKind::Const:
        return attrs.getInts("shape");

      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
        expectInputs(op, inputs, 2);
        return broadcastShapes(in(0), in(1));

      case OpKind::Neg:
      case OpKind::Relu:
      case OpKind::Gelu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Exp:
      case OpKind::Log:
      case OpKind::Sqrt:
      case OpKind::Scale:
      case OpKind::AddScalar:
      case OpKind::Identity:
        expectInputs(op, inputs, 1);
        return in(0);

      case OpKind::ReluGrad:
      case OpKind::GeluGrad:
      case OpKind::SiluGrad:
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::SoftmaxGrad:
        expectInputs(op, inputs, 2);
        if (in(0) != in(1))
            fail(op, "x/dy shape mismatch");
        return in(0);

      case OpKind::MatMul:
        expectInputs(op, inputs, 2);
        return matmulShape(op, in(0), in(1), attrs.getInt("transA", 0),
                           attrs.getInt("transB", 0));

      case OpKind::BatchMatMul: {
        expectInputs(op, inputs, 2);
        const Shape &a = in(0), &b = in(1);
        if (a.size() != 3 || b.size() != 3 || a[0] != b[0])
            fail(op, "expects [B,M,K]x[B,K,N]");
        Shape mm = matmulShape(op, {a[1], a[2]}, {b[1], b[2]},
                               attrs.getInt("transA", 0),
                               attrs.getInt("transB", 0));
        return {a[0], mm[0], mm[1]};
      }

      case OpKind::Reshape: {
        expectInputs(op, inputs, 1);
        Shape target = attrs.getInts("shape");
        int64_t total = numel(in(0));
        int64_t known = 1, infer_at = -1;
        for (size_t i = 0; i < target.size(); ++i) {
            if (target[i] == -1) {
                if (infer_at >= 0)
                    fail(op, "multiple -1 dims");
                infer_at = static_cast<int64_t>(i);
            } else {
                known *= target[i];
            }
        }
        if (infer_at >= 0)
            target[infer_at] = total / known;
        if (numel(target) != total)
            fail(op, "numel mismatch " + shapeToString(in(0)) + " -> " +
                     shapeToString(target));
        return target;
      }

      case OpKind::Permute: {
        expectInputs(op, inputs, 1);
        auto perm = attrs.getInts("perm");
        const Shape &x = in(0);
        if (perm.size() != x.size())
            fail(op, "perm rank mismatch");
        Shape out(x.size());
        for (size_t i = 0; i < perm.size(); ++i)
            out[i] = x[perm[i]];
        return out;
      }

      case OpKind::Slice: {
        expectInputs(op, inputs, 1);
        int64_t axis = attrs.getInt("axis");
        int64_t begin = attrs.getInt("begin");
        int64_t end = attrs.getInt("end");
        Shape out = in(0);
        if (axis < 0 || axis >= static_cast<int64_t>(out.size()))
            fail(op, "axis out of range");
        if (begin < 0 || end > out[axis] || begin >= end)
            fail(op, "bad slice range");
        out[axis] = end - begin;
        return out;
      }

      case OpKind::Pad: {
        expectInputs(op, inputs, 1);
        int64_t axis = attrs.getInt("axis");
        Shape out = in(0);
        if (axis < 0 || axis >= static_cast<int64_t>(out.size()))
            fail(op, "axis out of range");
        out[axis] += attrs.getInt("before", 0) + attrs.getInt("after", 0);
        return out;
      }

      case OpKind::BroadcastTo: {
        expectInputs(op, inputs, 1);
        Shape target = attrs.getInts("shape");
        if (!broadcastableTo(in(0), target))
            fail(op, "cannot broadcast " + shapeToString(in(0)) + " to " +
                     shapeToString(target));
        return target;
      }

      case OpKind::ReduceSum:
      case OpKind::ReduceMean: {
        expectInputs(op, inputs, 1);
        auto axes = attrs.getInts("axes");
        bool keep = attrs.getInt("keepdims", 0) != 0;
        const Shape &x = in(0);
        std::vector<bool> reduced(x.size(), false);
        for (int64_t a : axes) {
            if (a < 0 || a >= static_cast<int64_t>(x.size()))
                fail(op, "axis out of range");
            reduced[a] = true;
        }
        Shape out;
        for (size_t i = 0; i < x.size(); ++i) {
            if (reduced[i]) {
                if (keep)
                    out.push_back(1);
            } else {
                out.push_back(x[i]);
            }
        }
        if (out.empty())
            out.push_back(1);
        return out;
      }

      case OpKind::Conv2d:
      case OpKind::ConvBiasAct: {
        const Shape &x = in(0), &w = in(1);
        if (x.size() != 4 || w.size() != 4)
            fail(op, "expects NCHW x and [Co,Ci,Kh,Kw] w");
        if (x[1] != w[1])
            fail(op, "channel mismatch " + shapeToString(x) + " w " +
                     shapeToString(w));
        int64_t s = attrs.getInt("stride", 1), p = attrs.getInt("pad", 0);
        return {x[0], w[0], convOutDim(x[2], w[2], s, p),
                convOutDim(x[3], w[3], s, p)};
      }

      case OpKind::DwConv2d:
      case OpKind::DwConvBiasAct: {
        const Shape &x = in(0), &w = in(1);
        if (x.size() != 4 || w.size() != 4 || w[1] != 1)
            fail(op, "expects NCHW x and [C,1,Kh,Kw] w");
        if (x[1] != w[0])
            fail(op, "channel mismatch");
        int64_t s = attrs.getInt("stride", 1), p = attrs.getInt("pad", 0);
        return {x[0], x[1], convOutDim(x[2], w[2], s, p),
                convOutDim(x[3], w[3], s, p)};
      }

      case OpKind::Conv2dBwdInput:
      case OpKind::DwConv2dBwdInput:
        expectInputs(op, inputs, 2);
        return attrs.getInts("xshape");

      case OpKind::Conv2dBwdWeight:
      case OpKind::DwConv2dBwdWeight: {
        expectInputs(op, inputs, 2);
        Shape w = attrs.getInts("wshape");
        int64_t limit = attrs.getInt("limitCo", 0);
        if (limit > 0)
            w[0] = limit;
        return w;
      }

      case OpKind::AvgPool2d: {
        expectInputs(op, inputs, 1);
        const Shape &x = in(0);
        if (x.size() != 4)
            fail(op, "expects NCHW");
        int64_t k = attrs.getInt("kernel");
        int64_t s = attrs.getInt("stride", k);
        return {x[0], x[1], convOutDim(x[2], k, s, 0),
                convOutDim(x[3], k, s, 0)};
      }

      case OpKind::AvgPool2dGrad:
      case OpKind::GlobalAvgPoolGrad:
        expectInputs(op, inputs, 1);
        return attrs.getInts("xshape");

      case OpKind::GlobalAvgPool: {
        expectInputs(op, inputs, 1);
        const Shape &x = in(0);
        if (x.size() != 4)
            fail(op, "expects NCHW");
        return {x[0], x[1]};
      }

      case OpKind::Softmax:
        expectInputs(op, inputs, 1);
        return in(0);

      case OpKind::LayerNorm: {
        expectInputs(op, inputs, 3);
        const Shape &x = in(0);
        int64_t d = x.back();
        if (in(1) != Shape{d} || in(2) != Shape{d})
            fail(op, "gamma/beta must be [D]");
        return x;
      }

      case OpKind::RMSNorm: {
        expectInputs(op, inputs, 2);
        const Shape &x = in(0);
        if (in(1) != Shape{x.back()})
            fail(op, "gamma must be [D]");
        return x;
      }

      case OpKind::LayerNormGradX:
      case OpKind::RMSNormGradX:
        return in(0);

      case OpKind::LayerNormGradGamma:
      case OpKind::RMSNormGradGamma:
        expectInputs(op, inputs, 2);
        return {in(0).back()};

      case OpKind::Embedding: {
        expectInputs(op, inputs, 2);
        const Shape &table = in(0), &ids = in(1);
        if (table.size() != 2)
            fail(op, "table must be [V,D]");
        Shape out = ids;
        out.push_back(table[1]);
        return out;
      }

      case OpKind::EmbeddingGrad: {
        expectInputs(op, inputs, 2);
        const Shape &dy = in(1);
        return {attrs.getInt("vocab"), dy.back()};
      }

      case OpKind::CrossEntropy:
      case OpKind::Mse: {
        expectInputs(op, inputs, 2);
        return {1};
      }

      case OpKind::CrossEntropyGrad:
      case OpKind::MseGrad:
        expectInputs(op, inputs, 2);
        return in(0);

      case OpKind::ApplySgd:
      case OpKind::ApplyMomentum:
      case OpKind::ApplyAdam:
      case OpKind::ApplyLion:
      case OpKind::AccumGrad:
        // In-place: output aliases the parameter (input 0).
        return in(0);

      case OpKind::MatMulBiasAct: {
        expectInputs(op, inputs, 3);
        return matmulShape(op, in(0), in(1), attrs.getInt("transA", 0),
                           attrs.getInt("transB", 0));
      }

      // --- quantization -------------------------------------------------
      case OpKind::Quantize:
      case OpKind::Dequantize:
        // Optional second input: per-channel scales (f32 const).
        if (inputs.size() != 1 && inputs.size() != 2)
            fail(op, "expected 1 or 2 inputs");
        return in(0);

      case OpKind::Requantize:
      case OpKind::QuantRelu:
        expectInputs(op, inputs, 1);
        return in(0);

      case OpKind::QuantAdd:
        expectInputs(op, inputs, 2);
        if (in(0) != in(1))
            fail(op, "expects equal shapes");
        return in(0);

      case OpKind::QuantMatMul: {
        if (inputs.size() < 2 || inputs.size() > 4)
            fail(op, "expected 2-4 inputs");
        return matmulShape(op, in(0), in(1), attrs.getInt("transA", 0),
                           attrs.getInt("transB", 0));
      }

      case OpKind::QuantConv2d: {
        if (inputs.size() < 2 || inputs.size() > 4)
            fail(op, "expected 2-4 inputs");
        const Shape &x = in(0), &w = in(1);
        if (x.size() != 4 || w.size() != 4 || x[1] != w[1])
            fail(op, "expects NCHW x and [Co,Ci,Kh,Kw] w");
        int64_t s = attrs.getInt("stride", 1), p = attrs.getInt("pad", 0);
        return {x[0], w[0], convOutDim(x[2], w[2], s, p),
                convOutDim(x[3], w[3], s, p)};
      }

      case OpKind::QuantDwConv2d: {
        if (inputs.size() < 2 || inputs.size() > 4)
            fail(op, "expected 2-4 inputs");
        const Shape &x = in(0), &w = in(1);
        if (x.size() != 4 || w.size() != 4 || w[1] != 1 || x[1] != w[0])
            fail(op, "expects NCHW x and [C,1,Kh,Kw] w");
        int64_t s = attrs.getInt("stride", 1), p = attrs.getInt("pad", 0);
        return {x[0], x[1], convOutDim(x[2], w[2], s, p),
                convOutDim(x[3], w[3], s, p)};
      }

      case OpKind::CacheWrite: {
        expectInputs(op, inputs, 2);
        const Shape &x = in(0), &pos = in(1);
        int64_t max_seq = attrs.getInt("maxSeq");
        if (max_seq <= 0)
            fail(op, "maxSeq must be positive");
        if (x.size() == 2) {
            if (pos != Shape{1})
                fail(op, "rank-2 x needs pos [1]");
            if (x[0] < 1 || x[0] > max_seq)
                fail(op, "need 0 < S <= maxSeq");
            return {max_seq, x[1]};
        }
        if (x.size() == 3) {
            if (pos != Shape{1} && pos != Shape{x[0], 1})
                fail(op, "rank-3 x needs pos [1] or [B,1]");
            if (x[1] < 1 || x[1] > max_seq)
                fail(op, "need 0 < S <= maxSeq");
            return {x[0], max_seq, x[2]};
        }
        fail(op, "x must be rank 2 or 3");
      }

      case OpKind::FusedAttention: {
        expectInputs(op, inputs, 4);
        const Shape &q = in(0), &k = in(1), &v = in(2), &m = in(3);
        int64_t heads = attrs.getInt("heads", 0);
        if (heads > 0) {
            // Head-split sunk into the op: Q is the head-batched
            // [L*H,1,Dh] alias, K/V the raw [L,M,H*Dh] cache slabs
            // read head-strided, and the mask one [L,M] row per lead
            // shared by all H heads of that lead.
            if (q.size() != 3 || k.size() != 3 || m.size() != 2)
                fail(op, "head-split form needs rank-3 Q/K/V and a "
                         "rank-2 mask");
            if (k != v)
                fail(op, "head-split K/V shapes mismatch " +
                         shapeToString(k) + " / " + shapeToString(v));
            int64_t dh = q[2];
            if (q[1] != 1 || q[0] != k[0] * heads ||
                k[2] != heads * dh)
                fail(op, "head-split Q must be [L*heads,1,Dh] over "
                         "K/V [L,M,heads*Dh], got " +
                         shapeToString(q) + " / " + shapeToString(k));
            if (m[0] != k[0] || m[1] != k[1])
                fail(op, "head-split mask must be [L,M], got " +
                         shapeToString(m));
            return q;
        }
        if (q.size() != k.size() || q.size() != v.size() ||
            q.size() != m.size() || (q.size() != 2 && q.size() != 3))
            fail(op, "Q/K/V/mask must all be rank 2 or rank 3");
        size_t r = q.size();
        int64_t dh = q[r - 1];
        int64_t rows = k[r - 2];
        if (k[r - 1] != dh || v[r - 1] != dh)
            fail(op, "Q/K/V head dims mismatch " + shapeToString(q) +
                     " / " + shapeToString(k) + " / " + shapeToString(v));
        if (v[r - 2] != rows)
            fail(op, "K/V row counts mismatch " + shapeToString(k) +
                     " / " + shapeToString(v));
        if (m[r - 2] != q[r - 2] || m[r - 1] != rows)
            fail(op, "mask must be [S,M], got " + shapeToString(m));
        if (r == 3 && (k[0] != q[0] || v[0] != q[0] || m[0] != q[0]))
            fail(op, "batch dims mismatch");
        return q;
      }
    }
    fail(op, "unhandled op");
}

DType
inferDType(OpKind op, const Attrs &attrs)
{
    switch (op) {
      case OpKind::Quantize:
      case OpKind::Const: {
        // Quantize targets its "dtype" attr; Const may carry one when
        // the QuantizePass pre-quantized a frozen weight.
        std::string d = attrs.getString("dtype", "");
        if (d == "i8")
            return DType::I8;
        if (d == "f16")
            return DType::F16;
        return op == OpKind::Quantize ? DType::I8 : DType::F32;
      }
      case OpKind::Requantize:
      case OpKind::QuantMatMul:
      case OpKind::QuantConv2d:
      case OpKind::QuantDwConv2d:
      case OpKind::QuantAdd:
      case OpKind::QuantRelu:
        return DType::I8;
      default:
        return DType::F32;
    }
}

} // namespace pe
