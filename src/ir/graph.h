/**
 * @file
 * The PockEngine graph IR: a static DAG of single-output nodes.
 *
 * The entire training program (forward, backward, optimizer step) is one
 * Graph, derived at compile time (paper Fig. 7). Passes rewrite the
 * graph; the runtime consumes a scheduled, planned form of it.
 */

#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dtype.h"
#include "core/shape.h"
#include "core/tensor.h"
#include "ir/attrs.h"
#include "ir/op.h"

namespace pe {

/** One IR node producing a single tensor value. */
struct Node {
    int id = -1;
    OpKind op = OpKind::Identity;
    std::vector<int> inputs;
    Attrs attrs;
    Shape shape;          ///< inferred output shape
    DType dtype = DType::F32; ///< storage element type of the output
                              ///< (inferred from op + attrs; i8/f16
                              ///< only downstream of the QuantizePass)
    std::string name;     ///< unique for Param nodes; else informational
    bool trainable = false; ///< Param only: does it receive gradients?
};

/**
 * A DAG of nodes. Node ids are indices into the node table; dead nodes
 * (after DCE) are dropped by compact(). Param nodes are keyed by their
 * unique name so rewrites can be tracked across id remappings.
 */
class Graph
{
  public:
    /** Append a node, infer its output shape, and return its id. */
    int add(OpKind op, std::vector<int> inputs, Attrs attrs = {},
            std::string name = "");

    /**
     * Append a fully-specified node WITHOUT shape/dtype inference or
     * input-range validation — the deserialization path for compiled
     * plans (src/plan/). Compiled graphs may contain forward input
     * references (the QuantizePass points existing nodes at
     * later-created inputs and compact() preserves that), so inputs
     * cannot be range-checked until the whole table is rebuilt; the
     * caller is responsible for validating afterwards. @p n.id is
     * overwritten with the assigned id.
     */
    int addRaw(Node n);

    /** Add an Input node with an explicit shape. */
    int input(Shape shape, std::string name);
    /** Add a Param node (trainable by default). */
    int param(Shape shape, std::string name, bool trainable = true);
    /** Add a Const node with an explicit shape. */
    int constant(Shape shape, std::string name = "");

    const Node &node(int id) const { return nodes_.at(id); }
    Node &node(int id) { return nodes_.at(id); }
    int numNodes() const { return static_cast<int>(nodes_.size()); }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Graph outputs (values that must stay live at the end). */
    std::vector<int> &outputs() { return outputs_; }
    const std::vector<int> &outputs() const { return outputs_; }
    void markOutput(int id) { outputs_.push_back(id); }

    /** Ids of all Param nodes, in creation order. */
    std::vector<int> paramIds() const;
    /** Ids of all Input nodes, in creation order. */
    std::vector<int> inputIds() const;
    /** Look up a Param node by name; -1 if absent. */
    int findParam(const std::string &name) const;

    /** consumers[id] = ids of nodes using id as an input. */
    std::vector<std::vector<int>> consumers() const;

    /**
     * Nodes in a valid topological order. For freshly-built graphs
     * this is creation order (inputs must exist when a node is
     * added); after rewrites that point existing nodes at
     * later-created inputs (the QuantizePass does this), a stable
     * Kahn sweep — smallest ready id first — restores a valid order
     * while remaining the identity whenever creation order is valid.
     */
    std::vector<int> topoOrder() const;

    /**
     * Drop nodes not in @p live, remapping ids.
     * @return map from old id to new id (-1 for removed nodes).
     */
    std::vector<int> compact(const std::vector<bool> &live);

    /** Total FLOPs of the graph under the catalogue's cost heuristics. */
    double totalFlops() const;

    /** Attach compile-time data to a Const node. */
    void setConstData(int id, Tensor t);
    bool hasConstData(int id) const { return constData_.count(id) > 0; }
    const Tensor &constData(int id) const { return constData_.at(id); }
    /** Convenience: add a Const node holding @p t. */
    int constantOf(Tensor t, std::string name = "");

    /** Human-readable multi-line dump. */
    std::string toString() const;

  private:
    std::vector<Node> nodes_;
    std::vector<int> outputs_;
    std::unordered_map<int, Tensor> constData_;
};

/** Approximate FLOPs for one node (used by cost & device models). */
double nodeFlops(const Graph &g, const Node &n);

/** Bytes touched by one node (inputs + output), for roofline models. */
double nodeBytes(const Graph &g, const Node &n);

} // namespace pe
