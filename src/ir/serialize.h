/**
 * @file
 * JSON (de)serialization of graphs — the repository's ONNX stand-in.
 *
 * The paper's frontend accepts ONNX / torchscript / tf.graph; here any
 * external producer can hand PockEngine a DAG through this exchange
 * format and get the identical compile pipeline.
 */

#pragma once

#include <string>

#include "ir/graph.h"

namespace pe {

/** Serialize a graph to a JSON document. */
std::string graphToJson(const Graph &g);

/**
 * Parse a graph from JSON produced by graphToJson (or by an external
 * exporter following the same schema). Shapes are re-inferred and
 * validated on load.
 */
Graph graphFromJson(const std::string &json);

} // namespace pe
