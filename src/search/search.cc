#include "search/search.h"

#include <algorithm>
#include <numeric>

namespace pe {

namespace {

struct Genome {
    std::vector<bool> bits;
    double fitness = 0;
    int64_t memory = 0;
};

void
score(Genome &g, const std::vector<SearchUnit> &units,
      int64_t base_memory)
{
    g.fitness = 0;
    g.memory = base_memory;
    for (size_t i = 0; i < units.size(); ++i) {
        if (g.bits[i]) {
            g.fitness += units[i].contribution;
            g.memory += units[i].memoryCost;
        }
    }
}

/** Drop the worst contribution-per-byte units until under budget. */
void
repair(Genome &g, const std::vector<SearchUnit> &units,
       int64_t base_memory, int64_t budget)
{
    score(g, units, base_memory);
    while (g.memory > budget) {
        int worst = -1;
        double worst_density = 0;
        for (size_t i = 0; i < units.size(); ++i) {
            if (!g.bits[i] || units[i].memoryCost <= 0)
                continue;
            double density = units[i].contribution /
                             static_cast<double>(units[i].memoryCost);
            if (worst < 0 || density < worst_density) {
                worst = static_cast<int>(i);
                worst_density = density;
            }
        }
        if (worst < 0)
            break; // only zero-cost units remain; cannot repair further
        g.bits[worst] = false;
        score(g, units, base_memory);
    }
}

} // namespace

SearchResult
evolutionarySearch(const std::vector<SearchUnit> &units,
                   int64_t base_memory, int64_t memory_budget, Rng &rng,
                   const EvoOptions &opts)
{
    size_t n = units.size();
    std::vector<Genome> pop(opts.population);
    for (auto &g : pop) {
        g.bits.resize(n);
        for (size_t i = 0; i < n; ++i)
            g.bits[i] = rng.chance(0.5);
        repair(g, units, base_memory, memory_budget);
    }

    auto tournament = [&]() -> const Genome & {
        const Genome *best = &pop[rng.randint(pop.size())];
        for (int i = 1; i < opts.tournament; ++i) {
            const Genome &c = pop[rng.randint(pop.size())];
            if (c.fitness > best->fitness)
                best = &c;
        }
        return *best;
    };

    for (int gen = 0; gen < opts.generations; ++gen) {
        std::vector<Genome> next;
        next.reserve(pop.size());
        // Elitism: carry the best genome over.
        auto best_it = std::max_element(
            pop.begin(), pop.end(), [](const Genome &a, const Genome &b) {
                return a.fitness < b.fitness;
            });
        next.push_back(*best_it);
        while (next.size() < pop.size()) {
            const Genome &a = tournament();
            const Genome &b = tournament();
            Genome child;
            child.bits.resize(n);
            for (size_t i = 0; i < n; ++i) {
                child.bits[i] = rng.chance(0.5) ? a.bits[i] : b.bits[i];
                if (rng.chance(opts.mutationRate))
                    child.bits[i] = !child.bits[i];
            }
            repair(child, units, base_memory, memory_budget);
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }

    auto best_it = std::max_element(
        pop.begin(), pop.end(), [](const Genome &a, const Genome &b) {
            return a.fitness < b.fitness;
        });
    SearchResult result;
    result.selected = best_it->bits;
    result.totalContribution = best_it->fitness;
    result.totalMemory = best_it->memory;
    result.generations = opts.generations;
    return result;
}

std::vector<double>
measureContributions(
    int num_units,
    const std::function<SparseUpdateScheme(const std::vector<bool> &)>
        &unit_scheme,
    const std::function<double(const SparseUpdateScheme &)> &evaluate)
{
    std::vector<bool> none(num_units, false);
    double baseline = evaluate(unit_scheme(none));
    std::vector<double> contributions(num_units);
    for (int i = 0; i < num_units; ++i) {
        std::vector<bool> mask(num_units, false);
        mask[i] = true;
        contributions[i] = evaluate(unit_scheme(mask)) - baseline;
    }
    return contributions;
}

std::vector<int64_t>
measureMemoryCosts(
    int num_units,
    const std::function<SparseUpdateScheme(const std::vector<bool> &)>
        &unit_scheme,
    const std::function<int64_t(const SparseUpdateScheme &)> &memory_of)
{
    std::vector<bool> none(num_units, false);
    int64_t baseline = memory_of(unit_scheme(none));
    std::vector<int64_t> costs(num_units);
    for (int i = 0; i < num_units; ++i) {
        std::vector<bool> mask(num_units, false);
        mask[i] = true;
        costs[i] = std::max<int64_t>(0,
                                     memory_of(unit_scheme(mask)) -
                                         baseline);
    }
    return costs;
}

} // namespace pe
