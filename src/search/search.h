/**
 * @file
 * Sparse-scheme search (paper Section 3.1, Eq. 1).
 *
 * The search space is a set of "units" (e.g. "update biases of block
 * k", "update conv1 weights of block i at ratio r"). Following the
 * paper: (1) an offline sensitivity analysis fine-tunes each unit
 * alone and records the downstream accuracy delta as its
 * contribution; (2) an evolutionary search maximizes the summed
 * contribution subject to the memory constraint, with per-unit
 * memory costs measured by the compile-time memory planner.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "engine/scheme.h"

namespace pe {

/** One selectable unit of the update scheme. */
struct SearchUnit {
    std::string name;
    double contribution = 0;  ///< Δacc from sensitivity analysis
    int64_t memoryCost = 0;   ///< marginal training-memory bytes
};

/** Outcome of the evolutionary search. */
struct SearchResult {
    std::vector<bool> selected;
    double totalContribution = 0;
    int64_t totalMemory = 0;
    int generations = 0;
};

/** Search knobs. */
struct EvoOptions {
    int population = 32;
    int generations = 40;
    double mutationRate = 0.08;
    int tournament = 3;
};

/**
 * Maximize sum(contribution) s.t. sum(memoryCost) + @p base_memory
 * <= @p memory_budget over unit subsets (Eq. 1). Infeasible genomes
 * are repaired by dropping the worst contribution/byte units.
 */
SearchResult evolutionarySearch(const std::vector<SearchUnit> &units,
                                int64_t base_memory,
                                int64_t memory_budget, Rng &rng,
                                const EvoOptions &opts = {});

/**
 * Offline sensitivity analysis: for each unit, evaluate the accuracy
 * of fine-tuning with only that unit enabled, minus the
 * all-frozen baseline.
 *
 * @param unit_scheme  maps a unit-selection mask to a scheme
 * @param evaluate     fine-tunes under a scheme, returns accuracy
 */
std::vector<double> measureContributions(
    int num_units,
    const std::function<SparseUpdateScheme(const std::vector<bool> &)>
        &unit_scheme,
    const std::function<double(const SparseUpdateScheme &)> &evaluate);

/**
 * Marginal memory of each unit: planner total bytes with the unit
 * enabled alone, minus the all-frozen baseline.
 */
std::vector<int64_t> measureMemoryCosts(
    int num_units,
    const std::function<SparseUpdateScheme(const std::vector<bool> &)>
        &unit_scheme,
    const std::function<int64_t(const SparseUpdateScheme &)> &memory_of);

} // namespace pe
